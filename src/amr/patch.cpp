#include "alamr/amr/patch.hpp"

#include <algorithm>
#include <cmath>

namespace alamr::amr {

Patch::Patch(PatchKey key, int mx, int ghosts)
    : key_(key),
      mx_(mx),
      ghosts_(ghosts),
      data_(static_cast<std::size_t>(mx + 2 * ghosts) *
            static_cast<std::size_t>(mx + 2 * ghosts)) {}

double Patch::interior_sum_rho() const noexcept {
  double total = 0.0;
  for (int j = 0; j < mx_; ++j) {
    for (int i = 0; i < mx_; ++i) total += at(i, j).rho;
  }
  return total;
}

double Patch::interior_sum_e() const noexcept {
  double total = 0.0;
  for (int j = 0; j < mx_; ++j) {
    for (int i = 0; i < mx_; ++i) total += at(i, j).e;
  }
  return total;
}

double Patch::max_relative_density_jump() const noexcept {
  double worst = 0.0;
  for (int j = 0; j < mx_; ++j) {
    for (int i = 0; i < mx_; ++i) {
      const double rho = std::max(at(i, j).rho, 1e-12);
      const double dx = std::abs(at(i + 1, j).rho - at(i - 1, j).rho);
      const double dy = std::abs(at(i, j + 1).rho - at(i, j - 1).rho);
      // Central difference across two cells: normalize by 2 rho so the
      // indicator is the relative change per cell.
      worst = std::max(worst, 0.5 * (dx + dy) / rho);
    }
  }
  return worst;
}

double Patch::max_wave_speed() const noexcept {
  double worst = 0.0;
  for (int j = 0; j < mx_; ++j) {
    for (int i = 0; i < mx_; ++i) {
      worst = std::max(worst, amr::max_wave_speed(at(i, j)));
    }
  }
  return worst;
}

}  // namespace alamr::amr
