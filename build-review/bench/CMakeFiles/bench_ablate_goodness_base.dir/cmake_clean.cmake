file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_goodness_base.dir/bench_ablate_goodness_base.cpp.o"
  "CMakeFiles/bench_ablate_goodness_base.dir/bench_ablate_goodness_base.cpp.o.d"
  "bench_ablate_goodness_base"
  "bench_ablate_goodness_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_goodness_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
