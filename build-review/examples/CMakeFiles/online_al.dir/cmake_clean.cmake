file(REMOVE_RECURSE
  "CMakeFiles/online_al.dir/online_al.cpp.o"
  "CMakeFiles/online_al.dir/online_al.cpp.o.d"
  "online_al"
  "online_al.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_al.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
