#pragma once

// Shared infrastructure for the experiment benches (one binary per paper
// table/figure — see DESIGN.md's experiment index).
//
// Dataset resolution order:
//   1. $ALAMR_DATASET (explicit CSV path)
//   2. data/amr_dataset.csv found by walking up from the working directory
//   3. generated on the fly with the paper-scale campaign and cached at
//      data/amr_dataset.csv (one-time cost of several minutes)
//
// Knobs (environment):
//   ALAMR_QUICK=1          reduced trajectories/iterations for smoke runs
//   ALAMR_TRAJECTORIES=N   override trajectory count
//   ALAMR_ITERATIONS=N     override AL iteration cap
//   ALAMR_THREADS=N        parallel lanes for the trajectory fan-out
//                          (default hardware_concurrency; results are
//                          bit-identical for any value)
//   ALAMR_TRACE=1          enable the observability layer (or pass
//                          --trace <path> to also write the report)
//   ALAMR_SCALAR_PREDICT=1 disable the fused batched posterior (P5
//                          before/after arm; curves stay byte-identical)

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "alamr/amr/campaign.hpp"
#include "alamr/core/batch.hpp"
#include "alamr/core/parallel.hpp"
#include "alamr/core/simulator.hpp"
#include "alamr/data/csv.hpp"

namespace alamr::bench {

/// `--trace <path>` wiring: call at the top of main. Enables tracing
/// process-wide when the flag is present (core/trace.hpp) and returns the
/// output path for finish_trace().
inline std::optional<std::string> trace_flag(int argc, char** argv) {
  return core::trace::parse_trace_flag(argc, argv);
}

/// Writes the aggregated trace report (JSON at `path`, CSV at
/// `path`.csv). No-op when --trace was not given.
inline void finish_trace(const std::optional<std::string>& path) {
  if (!path) return;
  core::trace::write_global_trace(*path);
  std::printf("\n# trace report: %s (and %s.csv)\n", path->c_str(),
              path->c_str());
}

/// `--fault-plan <spec>` wiring (core/faults.hpp grammar, e.g.
/// "seed=7;acquire.oom:p=0.05;data.nan_row:hits=3|9"): returns the parsed
/// plan for the bench to install into AlOptions::failures.plan. Announces
/// the schedule on stdout so runs are self-describing.
inline std::optional<core::faults::FaultPlan> fault_plan_flag(int argc,
                                                             char** argv) {
  const std::optional<core::faults::FaultPlan> plan =
      core::faults::parse_fault_flag(argc, argv);
  if (plan) {
    std::printf("# fault plan:\n%s", core::faults::describe(*plan).c_str());
  }
  return plan;
}

/// `--resilience=on|off` / `--no-resilience` wiring (core/resilience.hpp):
/// applies the flag to `options` in place and announces the effective
/// posture. The default (on) is byte-invisible while nothing fails;
/// `--no-resilience` restores the fail-fast contract for debugging, so a
/// fault plan that the degradation ladder would ride out kills the run
/// loudly instead.
inline void resilience_flag(int argc, char** argv,
                            core::resilience::Options& options) {
  if (core::resilience::parse_resilience_flag(argc, argv, options)) {
    std::printf("# %s\n", core::resilience::describe(options).c_str());
  }
}

/// `--checkpoint <dir>` / `--resume` wiring for the long benches. With a
/// checkpoint dir each batch runs trajectory-isolated and resumable; with
/// --resume an interrupted run picks up from the saved per-trajectory
/// state (byte-identical to never having been interrupted).
struct CheckpointFlags {
  std::filesystem::path dir;  // empty = checkpointing off
  bool resume = false;
};

inline CheckpointFlags checkpoint_flags(int argc, char** argv) {
  CheckpointFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--checkpoint" && i + 1 < argc) {
      flags.dir = argv[i + 1];
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      flags.dir = std::string(arg.substr(std::string_view("--checkpoint=").size()));
    } else if (arg == "--resume") {
      flags.resume = true;
    }
  }
  if (!flags.dir.empty()) {
    std::printf("# checkpointing to %s%s\n", flags.dir.string().c_str(),
                flags.resume ? " (resume)" : "");
  }
  return flags;
}

/// Batch runner honoring the checkpoint flags: plain run_batch when
/// checkpointing is off, fault-isolated + resumable otherwise (each
/// configuration gets its own subdirectory via `tag`; failed trajectories
/// are reported and dropped from the aggregated curves instead of killing
/// the bench).
inline std::vector<core::TrajectoryResult> run_bench_batch(
    const core::AlSimulator& simulator, const core::Strategy& strategy,
    core::BatchOptions batch, const CheckpointFlags& checkpoint,
    const std::string& tag) {
  if (checkpoint.dir.empty()) {
    return core::run_batch(simulator, strategy, batch);
  }
  batch.checkpoint_dir = checkpoint.dir / tag;
  batch.resume = checkpoint.resume;
  const std::vector<core::BatchTrajectory> slots =
      core::run_batch_isolated(simulator, strategy, batch);
  std::vector<core::TrajectoryResult> results;
  results.reserve(slots.size());
  for (std::size_t t = 0; t < slots.size(); ++t) {
    if (slots[t].ok) {
      results.push_back(slots[t].result);
    } else {
      std::printf("# [%s] trajectory %zu FAILED: %s\n", tag.c_str(), t,
                  slots[t].error.c_str());
    }
  }
  return results;
}

inline std::optional<std::size_t> env_size(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return std::nullopt;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

inline bool quick_mode() {
  const char* value = std::getenv("ALAMR_QUICK");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

/// Loads the cached paper-scale dataset, generating and caching it if
/// missing.
inline data::Dataset load_dataset() {
  if (const char* override_path = std::getenv("ALAMR_DATASET")) {
    std::printf("# dataset: %s\n", override_path);
    return data::read_csv(override_path);
  }
  std::filesystem::path dir = std::filesystem::current_path();
  for (int up = 0; up < 5; ++up) {
    const auto candidate = dir / "data" / "amr_dataset.csv";
    if (std::filesystem::exists(candidate)) {
      std::printf("# dataset: %s\n", candidate.string().c_str());
      return data::read_csv(candidate);
    }
    if (!dir.has_parent_path() || dir.parent_path() == dir) break;
    dir = dir.parent_path();
  }

  std::printf("# dataset missing - running the paper-scale AMR campaign "
              "(one-time, several minutes)...\n");
  std::fflush(stdout);
  amr::CampaignOptions options;
  const auto records = amr::Campaign(options).run();
  const data::Dataset dataset =
      amr::Campaign::to_dataset(records, options.dataset_size);
  std::filesystem::create_directories("data");
  data::write_csv(dataset, "data/amr_dataset.csv");
  std::printf("# cached data/amr_dataset.csv\n");
  return dataset;
}

/// Default AL options used across the experiment benches (paper Sec. IV:
/// n_test = 200; n_init varies per experiment).
inline core::AlOptions al_options(std::size_t n_init, std::size_t iterations) {
  core::AlOptions options;
  options.n_test = 200;
  options.n_init = n_init;
  options.max_iterations = env_size("ALAMR_ITERATIONS").value_or(
      quick_mode() ? std::min<std::size_t>(iterations, 30) : iterations);
  options.initial_fit.restarts = 2;
  options.initial_fit.max_opt_iterations = 50;
  options.refit.restarts = 0;
  options.refit.max_opt_iterations = 10;
  options.rmse_stride = 1;
  // ALAMR_SCALAR_PREDICT=1 replays the pre-arena per-candidate predict
  // loop — the "before" arm of the EXPERIMENTS.md P5 wall-clock
  // comparison. Curves are byte-identical either way.
  if (const char* scalar = std::getenv("ALAMR_SCALAR_PREDICT");
      scalar != nullptr && scalar[0] == '1') {
    options.batched_predict = false;
  }
  return options;
}

inline std::size_t trajectories(std::size_t wanted) {
  return env_size("ALAMR_TRAJECTORIES").value_or(quick_mode() ? 1 : wanted);
}

/// Batch options for the trajectory fan-out: every trajectory gets an
/// independent derived rng stream, so curves are bit-identical regardless
/// of ALAMR_THREADS.
inline core::BatchOptions batch_options(std::size_t n_traj, std::uint64_t seed) {
  core::BatchOptions batch;
  batch.trajectories = n_traj;
  batch.seed = seed;
  batch.threads = core::configured_parallel_threads();
  return batch;
}

inline void print_header(const char* experiment, const char* paper_artifact,
                         const char* expectation) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s  (reproduces %s)\n", experiment, paper_artifact);
  std::printf("shape expectation: %s\n", expectation);
  std::printf("parallel lanes: %zu (override with ALAMR_THREADS)\n",
              core::configured_parallel_threads());
  std::printf("==============================================================="
              "=================\n");
}

}  // namespace alamr::bench
