file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cost_violins.dir/bench_fig2_cost_violins.cpp.o"
  "CMakeFiles/bench_fig2_cost_violins.dir/bench_fig2_cost_violins.cpp.o.d"
  "bench_fig2_cost_violins"
  "bench_fig2_cost_violins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cost_violins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
