#pragma once

// The five candidate-selection algorithms of paper Sec. IV-B.
//
// Every strategy sees the same inputs Algorithm 1 provides: the remaining
// candidate rows and the cost/memory GPR predictions (mean and standard
// deviation, in log10 response space) for each. It returns the index of
// the chosen candidate, or nothing to terminate AL early (RGMA does this
// when no remaining candidate is predicted to satisfy the memory limit).

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "alamr/linalg/matrix.hpp"
#include "alamr/stats/rng.hpp"

namespace alamr::core {

/// What a strategy may inspect at one AL iteration. All vectors are
/// aligned with the rows of `x` (the remaining Active candidates, scaled
/// features). Predictions are in log10 response space, matching the
/// paper's pre-processing. When the driving strategy declares
/// needs_mean() == false, a mean-skipping sweep may hand it EMPTY mu_cost
/// / mu_mem spans — by contract such a strategy never reads them.
struct CandidateView {
  const linalg::Matrix& x;
  std::span<const double> mu_cost;
  std::span<const double> sigma_cost;
  std::span<const double> mu_mem;
  std::span<const double> sigma_mem;

  std::size_t size() const noexcept { return sigma_cost.size(); }
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;
  virtual std::optional<std::size_t> select(const CandidateView& candidates,
                                            stats::Rng& rng) const = 0;
  virtual std::unique_ptr<Strategy> clone() const = 0;

  /// False when select() never reads mu_cost / mu_mem. A batched sweep
  /// can then skip the O(n m) posterior-mean pass over the candidate
  /// panel and recover only the selected candidate's mean afterwards.
  virtual bool needs_mean() const noexcept { return true; }
};

/// Uniform random sampling — the reference point that ignores the models.
class RandUniform final : public Strategy {
 public:
  std::string name() const override { return "RandUniform"; }
  std::optional<std::size_t> select(const CandidateView& candidates,
                                    stats::Rng& rng) const override;
  std::unique_ptr<Strategy> clone() const override;
  bool needs_mean() const noexcept override { return false; }
};

/// Uncertainty sampling: argmax sigma_cost (the paper's earlier
/// "Variance Reduction").
class MaxSigma final : public Strategy {
 public:
  std::string name() const override { return "MaxSigma"; }
  std::optional<std::size_t> select(const CandidateView& candidates,
                                    stats::Rng& rng) const override;
  std::unique_ptr<Strategy> clone() const override;
  bool needs_mean() const noexcept override { return false; }
};

/// Greedy argmax (sigma_cost - mu_cost). As the paper observes, the spread
/// of mu dominates the spread of sigma, so in practice this picks the
/// cheapest predicted candidate — hence the name.
class MinPred final : public Strategy {
 public:
  std::string name() const override { return "MinPred"; }
  std::optional<std::size_t> select(const CandidateView& candidates,
                                    stats::Rng& rng) const override;
  std::unique_ptr<Strategy> clone() const override;
};

/// Randomized cost-efficiency: draw from the normalized goodness
/// distribution g = base^(sigma_cost - mu_cost). base = 10 matches the
/// log10 pre-processing; higher bases skew selection toward MinPred.
class RandGoodness final : public Strategy {
 public:
  explicit RandGoodness(double base = 10.0);
  double base() const noexcept { return base_; }
  std::string name() const override;
  std::optional<std::size_t> select(const CandidateView& candidates,
                                    stats::Rng& rng) const override;
  std::unique_ptr<Strategy> clone() const override;

 private:
  double base_;
};

/// RandGoodness with Memory Awareness (Algorithm 2): candidates whose
/// predicted memory mu_mem meets or exceeds the limit are filtered out
/// before the goodness draw; if none survive, AL terminates early.
class Rgma final : public Strategy {
 public:
  /// `memory_limit_log10`: L_mem in log10(MB) — the same space as mu_mem.
  explicit Rgma(double memory_limit_log10, double base = 10.0);
  double memory_limit_log10() const noexcept { return limit_; }
  double base() const noexcept { return base_; }
  std::string name() const override;
  std::optional<std::size_t> select(const CandidateView& candidates,
                                    stats::Rng& rng) const override;
  std::unique_ptr<Strategy> clone() const override;

 private:
  double limit_;
  double base_;
};

/// Bayesian-Optimization contrast strategy (paper Sec. II-C): Expected
/// Improvement toward the MINIMUM predicted cost,
///   EI = (best - mu - xi) Phi(z) + sigma phi(z),  z = (best - mu - xi)/sigma,
/// with the incumbent `best` approximated by the lowest predicted mean
/// among the remaining candidates (the Strategy interface is memoryless).
/// Included to demonstrate the paper's AL-vs-BO distinction: EI races to
/// the global cost minimizer instead of building an accurate surrogate
/// across the whole input space.
class ExpectedImprovement final : public Strategy {
 public:
  explicit ExpectedImprovement(double xi = 0.01);
  double xi() const noexcept { return xi_; }
  std::string name() const override { return "ExpectedImprovement"; }
  std::optional<std::size_t> select(const CandidateView& candidates,
                                    stats::Rng& rng) const override;
  std::unique_ptr<Strategy> clone() const override;

 private:
  double xi_;
};

}  // namespace alamr::core
