// Durable checkpoint layer (core/checkpoint.hpp, DESIGN.md §14): CRC32
// framing, generation rotation, torn-write/partial-read fault handling,
// quarantine + fallback, version gating (newer-format files are refused
// but KEPT), and the online checkpoint codec round-trip.

#include "alamr/core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "alamr/core/faults.hpp"
#include "alamr/data/partition.hpp"
#include "synthetic_dataset.hpp"

namespace {

using namespace alamr;
using namespace alamr::core;
namespace faults = alamr::core::faults;
namespace fs = std::filesystem;

fs::path temp_path(const char* name) {
  const fs::path p = fs::temp_directory_path() / name;
  remove_durable_payload(p, 8);
  std::error_code ec;
  fs::remove(fs::path(p).concat(".bad"), ec);
  fs::remove(fs::path(p).concat(".1.bad"), ec);
  return p;
}

std::string read_all(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

TEST(DurableCheckpoint, FrameRoundTripsAndCarriesVersionHeader) {
  const fs::path path = temp_path("alamr_durable_roundtrip.ckpt");
  save_durable_payload("{\"k\":1}", path);
  const std::string on_disk = read_all(path);
  EXPECT_EQ(on_disk.rfind("ALAMR-CKPT v2 ", 0), 0u) << on_disk;
  const auto payload = load_durable_payload(path);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"k\":1}");
  remove_durable_payload(path);
  EXPECT_FALSE(fs::exists(path));
}

TEST(DurableCheckpoint, MissingFileIsNullopt) {
  const fs::path path = temp_path("alamr_durable_missing.ckpt");
  EXPECT_FALSE(load_durable_payload(path).has_value());
}

TEST(DurableCheckpoint, RotationRetainsGenerationsNewestFirst) {
  const fs::path path = temp_path("alamr_durable_rotate.ckpt");
  save_durable_payload("gen A", path, 3);
  save_durable_payload("gen B", path, 3);
  save_durable_payload("gen C", path, 3);
  save_durable_payload("gen D", path, 3);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_TRUE(fs::exists(checkpoint_generation_path(path, 1)));
  EXPECT_TRUE(fs::exists(checkpoint_generation_path(path, 2)));
  // retain=3 keeps generations 0..2; "gen A" has aged out.
  EXPECT_FALSE(fs::exists(checkpoint_generation_path(path, 3)));
  CheckpointLoadReport report;
  const auto newest = load_durable_payload(path, 3, &report);
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(*newest, "gen D");
  EXPECT_EQ(report.loaded_from, path);
  remove_durable_payload(path, 3);
}

TEST(DurableCheckpoint, CorruptNewestQuarantinedAndOlderGenerationLoads) {
  const fs::path path = temp_path("alamr_durable_corrupt.ckpt");
  save_durable_payload("intact older state", path, 3);
  save_durable_payload("newest state", path, 3);
  {
    // Flip one payload byte in the newest generation: CRC must catch it.
    std::string bytes = read_all(path);
    bytes.back() ^= 0x20;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  CheckpointLoadReport report;
  const auto payload = load_durable_payload(path, 3, &report);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "intact older state");
  EXPECT_EQ(report.fallbacks, 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_TRUE(fs::exists(report.quarantined[0]));
  EXPECT_EQ(report.quarantined[0].extension(), ".bad");
  EXPECT_FALSE(fs::exists(path));  // moved aside, not deleted
  // remove keeps the quarantined evidence.
  remove_durable_payload(path, 3);
  EXPECT_TRUE(fs::exists(report.quarantined[0]));
  std::error_code ec;
  fs::remove(report.quarantined[0], ec);
}

TEST(DurableCheckpoint, TornWriteFaultFallsBackToPreviousGeneration) {
  const fs::path path = temp_path("alamr_durable_torn.ckpt");
  faults::FaultInjector injector(
      faults::FaultPlan::parse("io.torn_write:hits=1"));
  const faults::ScopedFaultInjector scope(injector);
  save_durable_payload("first save", path, 3);   // hit 0: clean
  save_durable_payload("second save", path, 3);  // hit 1: torn mid-write
  CheckpointLoadReport report;
  const auto payload = load_durable_payload(path, 3, &report);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "first save");
  EXPECT_EQ(report.fallbacks, 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  remove_durable_payload(path, 3);
  std::error_code ec;
  fs::remove(report.quarantined[0], ec);
}

TEST(DurableCheckpoint, PartialReadIsRetriedWithoutQuarantine) {
  const fs::path path = temp_path("alamr_durable_partial.ckpt");
  save_durable_payload("short-read payload", path, 3);
  faults::FaultInjector injector(
      faults::FaultPlan::parse("io.partial_read:hits=0"));
  const faults::ScopedFaultInjector scope(injector);
  CheckpointLoadReport report;
  const auto payload = load_durable_payload(path, 3, &report);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "short-read payload");
  EXPECT_EQ(report.read_retries, 1u);  // reread recovered the transient
  EXPECT_EQ(report.fallbacks, 0u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_TRUE(fs::exists(path));
  remove_durable_payload(path, 3);
}

TEST(DurableCheckpoint, NewerFormatVersionRefusedAndFileKept) {
  const fs::path path = temp_path("alamr_durable_future.ckpt");
  const std::string payload = "payload from the future";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    char header[64];
    std::snprintf(header, sizeof(header), "ALAMR-CKPT v99 len=%zu crc32=%08x",
                  payload.size(), crc32(payload));
    out << header << '\n' << payload;
  }
  try {
    load_durable_payload(path);
    FAIL() << "expected CheckpointVersionError";
  } catch (const CheckpointVersionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version 99"), std::string::npos) << what;
    EXPECT_NE(what.find("keeping the file"), std::string::npos) << what;
  }
  // Refusal, not corruption: the file survives untouched for the newer
  // build that wrote it.
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(fs::path(path).concat(".bad")));
  remove_durable_payload(path);
}

TEST(DurableCheckpoint, LegacyBareJsonStillLoads) {
  const fs::path path = temp_path("alamr_durable_legacy.ckpt");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "{\"version\":1}";
  }
  const auto payload = load_durable_payload(path);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"version\":1}");
  remove_durable_payload(path);
}

TEST(DurableCheckpoint, AllGenerationsCorruptThrowsNamingFirstFailure) {
  const fs::path path = temp_path("alamr_durable_allbad.ckpt");
  save_durable_payload("older", path, 2);
  save_durable_payload("newer", path, 2);
  for (std::size_t g = 0; g < 2; ++g) {
    const fs::path gen = checkpoint_generation_path(path, g);
    std::string bytes = read_all(gen);
    bytes.back() ^= 0x01;
    std::ofstream out(gen, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  try {
    load_durable_payload(path, 2);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no intact generation"), std::string::npos) << what;
    EXPECT_NE(what.find(path.string()), std::string::npos) << what;
  }
  std::error_code ec;
  fs::remove(fs::path(path).concat(".bad"), ec);
  fs::remove(fs::path(path).concat(".1.bad"), ec);
}

TEST(DurableCheckpoint, OnlineCheckpointJsonRoundTrips) {
  OnlineCheckpoint s;
  s.fingerprint = "fp-123";
  s.al_iterations_done = 4;
  s.visited = {9, 2, 5};
  s.skipped = {7};
  s.log_cost = {-1.5, 0.25, 3.0};
  s.log_mem = {0.5, 1.5, 2.5};
  s.theta_cost = {0.1, -0.2, 0.3};
  s.theta_mem = {1.0};
  s.backend_state_cost = "resil v1;opaque \"quoted\" state";
  s.rng = stats::Rng(77).save_state();
  s.cc = 12.5;
  s.cr = 0.75;
  s.oracle_giveups = 2;
  s.exhausted_safe_candidates = true;
  s.fault_hits[0] = 11;
  s.fault_fires[0] = 3;
  OnlineRecord rec;
  rec.grid_row = 9;
  rec.cost = 1.25;
  rec.memory = 100.0;
  rec.predicted_cost_log10 = 0.09;
  rec.predicted_mem_log10 = 2.0;
  rec.cumulative_cost = 1.25;
  rec.cumulative_regret = 0.0;
  rec.initial_phase = true;
  s.records = {rec};

  const OnlineCheckpoint r =
      online_checkpoint_from_json(online_checkpoint_to_json(s));
  EXPECT_EQ(r.fingerprint, s.fingerprint);
  EXPECT_EQ(r.al_iterations_done, s.al_iterations_done);
  EXPECT_EQ(r.visited, s.visited);
  EXPECT_EQ(r.skipped, s.skipped);
  EXPECT_EQ(r.log_cost, s.log_cost);
  EXPECT_EQ(r.log_mem, s.log_mem);
  EXPECT_EQ(r.theta_cost, s.theta_cost);
  EXPECT_EQ(r.backend_state_cost, s.backend_state_cost);
  EXPECT_EQ(r.backend_state_mem, "");
  EXPECT_EQ(r.rng.words, s.rng.words);
  EXPECT_EQ(r.cc, s.cc);
  EXPECT_EQ(r.cr, s.cr);
  EXPECT_EQ(r.oracle_giveups, 2u);
  EXPECT_TRUE(r.exhausted_safe_candidates);
  EXPECT_EQ(r.fault_hits[0], 11u);
  EXPECT_EQ(r.fault_fires[0], 3u);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].grid_row, 9u);
  EXPECT_EQ(r.records[0].cost, 1.25);
  EXPECT_TRUE(r.records[0].initial_phase);
}

TEST(DurableCheckpoint, OnlineCodecRejectsTrajectoryPayload) {
  TrajectoryCheckpoint t;
  t.fingerprint = "fp";
  EXPECT_THROW(online_checkpoint_from_json(checkpoint_to_json(t)),
               std::runtime_error);
}

TEST(CheckpointVersionGate, ResumeRefusesNewerCheckpointAndKeepsIt) {
  // Satellite (a): a run_resumable resume against a checkpoint written by
  // a NEWER build must fail with a clear error and leave the file alone.
  const fs::path path = temp_path("alamr_version_gate.ckpt");
  const std::string payload = "{\"whatever\": true}";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    char header[64];
    std::snprintf(header, sizeof(header), "ALAMR-CKPT v3 len=%zu crc32=%08x",
                  payload.size(), crc32(payload));
    out << header << '\n' << payload;
  }
  const auto dataset = alamr::testing::synthetic_amr_dataset(90, 31);
  core::AlOptions options;
  options.n_test = 30;
  options.n_init = 12;
  options.max_iterations = 3;
  options.initial_fit.restarts = 0;
  options.initial_fit.max_opt_iterations = 10;
  options.refit.max_opt_iterations = 3;
  const core::AlSimulator sim(dataset, options);
  stats::Rng prng(5);
  const data::Partition partition =
      data::make_partition(dataset.size(), options.n_test, options.n_init, prng);
  core::CheckpointConfig cfg;
  cfg.path = path;
  cfg.resume = true;
  stats::Rng rng(41);
  try {
    sim.run_resumable(core::RandGoodness(), partition, rng, cfg);
    FAIL() << "expected CheckpointVersionError";
  } catch (const CheckpointVersionError& e) {
    EXPECT_NE(std::string(e.what()).find("format version 3"),
              std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(fs::exists(path)) << "version refusal must keep the file";
  EXPECT_EQ(read_all(path).rfind("ALAMR-CKPT v3 ", 0), 0u)
      << "file must be byte-identical after the refusal";
  remove_durable_payload(path);
}

}  // namespace
