#pragma once

// The offline Active-Learning simulator (paper Algorithm 1).
//
// Drives sequential experiment selection against a database of precomputed
// AMR performance samples: partition into Init/Active/Test, fit cost and
// memory GPR models on Init, then repeatedly (predict over remaining
// Active candidates) -> (select one via a Strategy) -> (reveal its
// measurements) -> (warm-started refit of both models), recording the
// evaluation metrics after every iteration.

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "alamr/core/faults.hpp"
#include "alamr/core/resilience.hpp"
#include "alamr/core/strategies.hpp"
#include "alamr/core/trace.hpp"
#include "alamr/data/dataset.hpp"
#include "alamr/data/partition.hpp"
#include "alamr/data/transforms.hpp"
#include "alamr/gp/backend.hpp"
#include "alamr/gp/gpr.hpp"

namespace alamr::core {

/// Which kernel family the simulator builds (the paper uses RBF; the
/// others exist for the future-work kernel ablation).
enum class KernelChoice { kRbf, kRbfArd, kMatern32, kMatern52 };

/// Optional stopping heuristic (paper Sec. V-D, after Bloodgood &
/// Vijay-Shanker's "stabilizing predictions"): stop AL once the cost
/// model's Test-set predictions stop moving — the mean absolute change of
/// the log10 predictions stays below `tolerance` for `patience`
/// consecutive iterations (never before `min_iterations`).
struct StabilizingStopRule {
  bool enabled = false;
  double tolerance = 0.01;
  std::size_t patience = 5;
  std::size_t min_iterations = 20;
};

/// Why a trajectory ended.
enum class StopReason {
  kActiveExhausted,    // every Active sample was selected
  kIterationBudget,    // AlOptions::max_iterations reached
  kNoSafeCandidates,   // RGMA found no candidate under the memory limit
  kStabilized,         // StabilizingStopRule fired
  kCheckpointHalt,     // CheckpointConfig::halt_after_iterations reached
};

std::string to_string(StopReason reason);

/// Why an acquisition was censored (returned no usable label).
enum class CensorKind {
  kNone,
  kOverLimit,  // true memory exceeded L_mem and the run crashed (real OOM)
  kOom,        // injected acquire.oom fault
  kTimeout,    // injected acquire.timeout fault
  kNanRow,     // injected data.nan_row fault (labels came back corrupted)
};

std::string to_string(CensorKind kind);

/// What the simulator does with a censored acquisition. Every policy burns
/// the candidate's true cost into CC and CR (the core-hours were spent
/// either way) and removes it from Active; they differ in what, if
/// anything, the models learn from the failure.
enum class CensorPolicy {
  /// Nothing is learned: the point vanishes, models stay as they were,
  /// the iteration's budget is consumed.
  kDropCensored,
  /// The failure itself is a label: train on the observed cost and a
  /// memory label of L_mem + penalty_offset ("it crashed above the
  /// limit"), steering the memory model away from the region.
  kPenalizedLabel,
  /// The iteration retries with the next strategy pick (model unchanged,
  /// censored candidate excluded) until an acquisition succeeds or Active
  /// empties; only successful acquisitions consume max_iterations budget.
  kRetryNextCandidate,
};

std::string to_string(CensorPolicy policy);

/// Failure-awareness knobs. Default-constructed = the historical behavior:
/// every acquisition yields a clean label, no faults, byte-for-byte
/// identical trajectories.
struct FailureOptions {
  /// Censor acquisitions whose TRUE memory exceeds L_mem (the paper's
  /// motivating failure: those runs crash and burn their core-hours).
  /// Off by default because the baseline strategies must be allowed to
  /// observe over-limit labels for the paper's main comparison.
  bool failure_aware = false;

  CensorPolicy policy = CensorPolicy::kDropCensored;

  /// kPenalizedLabel: the censored memory label is L_mem + this offset
  /// (log10 space).
  double penalty_offset = 0.5;

  /// Explicit fault-injection plan for this simulator's trajectories
  /// (empty = fall back to the ALAMR_FAULT_PLAN env plan, if any). Each
  /// trajectory instantiates a fresh injector from the plan, so schedules
  /// are per-trajectory deterministic whatever the batch threading.
  faults::FaultPlan plan;
};

/// Periodic trajectory checkpointing (atomic-rename JSON) and resume.
struct CheckpointConfig {
  /// Checkpoint file. Empty = checkpointing disabled.
  std::filesystem::path path;

  /// Save every `stride` recorded passes (0 = never save mid-run; with a
  /// non-empty path the final state is still saved on completion).
  std::size_t stride = 10;

  /// Load `path` (when it exists) and continue from it instead of
  /// starting over. A checkpoint whose compatibility fingerprint does not
  /// match the current options/partition/plan is rejected with an error.
  bool resume = false;

  /// Stop after this many NEW passes this process (0 = run to
  /// completion), saving a checkpoint at the halt. For sharding long
  /// trajectories across job allocations — and for kill/resume tests.
  std::size_t halt_after_iterations = 0;

  /// Checkpoint generations kept on disk (path, path.1, ..., up to
  /// retain - 1 rotations). Loading falls back to the newest intact
  /// generation when newer ones are torn or corrupt (DESIGN.md §14).
  std::size_t retain = 3;
};

struct AlOptions {
  std::size_t n_test = 200;
  std::size_t n_init = 50;

  /// Per-feature pre-transforms applied before unit-cube scaling (paper
  /// Sec. V-D: train on log2(p) so powers of two are equidistant). Empty =
  /// identity for every column.
  std::vector<data::ColumnTransform> feature_transforms;

  /// Optional stabilizing-predictions early stopping.
  StabilizingStopRule stopping;

  /// 0 = run until the Active partition is exhausted.
  std::size_t max_iterations = 0;

  /// L_mem in log10(MB). NaN = use the paper's rule: 95% of the largest
  /// log10 memory response in the dataset.
  double memory_limit_log10 = std::numeric_limits<double>::quiet_NaN();

  KernelChoice kernel = KernelChoice::kRbf;

  /// Hyperparameter-fitting effort: the initial fit explores (restarts);
  /// per-iteration refits warm-start from the previous hyperparameters
  /// (Algorithm 1's note) with a small iteration budget.
  gp::GprOptions initial_fit{.restarts = 2, .max_opt_iterations = 60};
  gp::GprOptions refit{.restarts = 0, .max_opt_iterations = 12};

  /// Evaluate test RMSE every `rmse_stride` iterations (1 = every
  /// iteration, matching the paper; larger strides speed up big batches —
  /// intermediate records carry the last computed value). The final record
  /// of a trajectory is always freshly evaluated, whatever the stride.
  std::size_t rmse_stride = 1;

  /// Per-iteration refits go through GaussianProcessRegressor::
  /// fit_add_point: when the warm-started hyperparameter search leaves the
  /// kernel parameters unchanged, the posterior is extended in O(n^2)
  /// instead of rebuilt in O(n^3). Bit-identical to the full refit either
  /// way; the flag exists so tests can compare both paths.
  bool incremental_refit = true;

  /// Keep K(X_train, X_active) alive across AL iterations: each step
  /// erases the chosen candidate's column, appends one row for the
  /// acquired point (sharing one pairwise-distance pass between the cost
  /// and memory kernels), and falls back to a full rebuild only for models
  /// whose refit moved the hyperparameters. Every retained entry keeps the
  /// bits the full rebuild would produce, so trajectories are identical
  /// either way; the flag exists so tests can compare both paths.
  bool incremental_cross = true;

  /// Predict over the remaining candidates through the fused batched
  /// posterior (GaussianProcessRegressor::predict_batch): one pass over
  /// the incremental K(X_train, X_active) cache with every temporary in
  /// the per-trajectory workspace arena, so steady-state predict passes
  /// perform zero heap allocations. Off = the historical per-call
  /// Prediction path. Bit-identical either way (golden-tested); the flag
  /// exists so tests and benches can compare both paths.
  bool batched_predict = true;

  /// Keep the solved candidate panel Z = L^{-1} K(X_train, X_active)
  /// alive across AL iterations (DESIGN.md §13): when a refit extends the
  /// Cholesky factor by one row, only the panel's new row is solved —
  /// O(M n) per sweep instead of O(M n^2) — and the variance finalizes
  /// from cached running column sums. Effective with incremental_cross
  /// and batched_predict on the exact backend (and within a window epoch
  /// on kSubsetOfData). Bit-identical either way (golden-tested); the
  /// flag exists so tests and benches can compare both paths.
  bool panel_predict = true;

  /// Posterior backend for the per-response surrogates (DESIGN.md §12):
  /// kExact (default) is the byte-pinned seed recipe; kSubsetOfData and
  /// kLocalExperts are the approximate backends that break the O(n^3)
  /// refit wall for 10^5-candidate pools. The exact-path plumbing flags
  /// inside BackendOptions (incremental_refit / incremental_cross /
  /// batched_predict) are ignored here — the simulator copies the
  /// AlOptions flags above in before constructing backends, so the
  /// historical knobs keep working unchanged.
  gp::BackendOptions backend;

  /// Turns on the process-wide observability layer (core/trace.hpp) from
  /// the AlSimulator constructor — equivalent to setting ALAMR_TRACE or
  /// calling trace::set_enabled(true), and sticky like both. While tracing
  /// is enabled every run* call fills TrajectoryResult::trace.
  bool trace = false;

  /// Failure model: censoring policy, real-OOM awareness, fault plan.
  /// Defaults are inert (see FailureOptions).
  FailureOptions failures;

  /// Resilience layer (core/resilience.hpp): wraps each surrogate in the
  /// breaker-guarded degradation-ladder decorator and paces retries with
  /// the deadline executor. The default (enabled) is byte-invisible while
  /// nothing fails — golden-tested; disable to remove the decorator
  /// entirely (and with it any healing under armed fault plans).
  resilience::Options resilience;
};

/// Everything recorded at one AL iteration.
struct IterationRecord {
  std::size_t iteration = 0;       // 0-based
  std::size_t dataset_row = 0;     // row index in the full dataset
  double actual_cost = 0.0;        // node-hours (non-log)
  double actual_memory = 0.0;      // MB (non-log)
  double predicted_cost_log10 = 0.0;   // mu_cost of the chosen candidate
  double predicted_cost_sigma = 0.0;   // sigma_cost of the chosen candidate
  double predicted_mem_log10 = 0.0;
  double predicted_mem_sigma = 0.0;
  double rmse_cost = 0.0;          // test RMSE, non-log space (Eq. 10)
  double rmse_mem = 0.0;
  /// Cost-weighted test RMSE (Eq. 12 with rho_ii proportional to the test
  /// sample's actual cost — the paper's Sec. V-D argument that errors on
  /// expensive configurations matter more).
  double rmse_cost_weighted = 0.0;
  double cumulative_cost = 0.0;    // CC
  double cumulative_regret = 0.0;  // CR (Eq. 11)
  std::size_t candidates_before = 0;
  /// kNone for a clean acquisition. A censored record's cost/regret are
  /// already folded into the cumulative columns; its rmse columns carry
  /// the last computed values (the models did not change).
  CensorKind censor = CensorKind::kNone;
};

struct TrajectoryResult {
  std::string strategy_name;
  data::Partition partition;
  std::vector<IterationRecord> iterations;
  bool early_stopped = false;      // RGMA exhausted its safe candidates
  StopReason stop_reason = StopReason::kActiveExhausted;
  double memory_limit_mb = 0.0;    // non-log L_mem used for regret
  double initial_rmse_cost = 0.0;  // test RMSE right after the Init fit
  double initial_rmse_mem = 0.0;
  /// Failure-model accounting: acquisitions that returned no usable label
  /// and the true cost they burned (already included in the cumulative
  /// CC/CR columns). Zero when the failure model is inert.
  std::size_t censored_count = 0;
  double censored_cost = 0.0;
  /// Per-trajectory counters, phase timings, and the options/partition
  /// fingerprint. Empty (no counters/phases) unless tracing was enabled
  /// while the trajectory ran; the fingerprint is always filled.
  trace::TraceReport trace;
};

/// Immutable per-dataset structure shared by every trajectory of a batch
/// run: today, the dataset-wide pairwise-distance base over the scaled
/// features (gp::DistanceBase). Built once via
/// AlSimulator::make_shared_context() and handed to run* calls by const
/// pointer; after construction it is strictly read-only, so concurrent
/// trajectories share one instance with no synchronization. Trajectories
/// layer their own mutable state (training caches, cross matrices,
/// workspace arenas) on top — every gathered value is bitwise identical
/// to the recomputed one, so results do not depend on whether a context
/// was supplied.
class SharedBatchContext {
 public:
  explicit SharedBatchContext(std::shared_ptr<const gp::DistanceBase> base)
      : base_(std::move(base)) {}

  const gp::DistanceBase& distance_base() const noexcept { return *base_; }

 private:
  std::shared_ptr<const gp::DistanceBase> base_;
};

class AlSimulator {
 public:
  /// Pre-processes once: features scaled to the unit cube (fitted on the
  /// full dataset, as the offline analysis does), responses log10'd.
  AlSimulator(const data::Dataset& dataset, AlOptions options);

  const AlOptions& options() const noexcept { return options_; }
  const data::Dataset& dataset() const noexcept { return dataset_; }

  /// L_mem actually in force, log10(MB) / MB.
  double memory_limit_log10() const noexcept { return limit_log10_; }
  double memory_limit_mb() const noexcept;

  /// Builds the shared immutable batch context for this simulator's
  /// dataset: one O(N^2 d) pairwise-distance pass over the scaled
  /// features that every trajectory sharing it then gathers from in
  /// O(k^2) copies per cache (re)build.
  SharedBatchContext make_shared_context() const;

  /// Draws a fresh partition from `rng` and runs one trajectory. `shared`
  /// (optional) supplies the precomputed batch context; results are
  /// bitwise identical with or without it.
  TrajectoryResult run(const Strategy& strategy, stats::Rng& rng,
                       const SharedBatchContext* shared = nullptr) const;

  /// Runs one trajectory on a fixed partition (for paired comparisons).
  TrajectoryResult run_with_partition(
      const Strategy& strategy, const data::Partition& partition,
      stats::Rng& rng, const SharedBatchContext* shared = nullptr) const;

  /// run_with_partition with periodic checkpointing and resume: state is
  /// saved to `checkpoint.path` by atomic rename every `checkpoint.stride`
  /// passes, and with `checkpoint.resume` a matching existing checkpoint
  /// is loaded and continued — to a result byte-identical to an
  /// uninterrupted run (golden-tested). The completed run deletes its
  /// checkpoint file. `rng` is consumed exactly as run_with_partition
  /// would on a fresh run; on resume the saved stream state replaces it.
  TrajectoryResult run_resumable(const Strategy& strategy,
                                 const data::Partition& partition,
                                 stats::Rng& rng,
                                 const CheckpointConfig& checkpoint,
                                 const SharedBatchContext* shared = nullptr) const;

  /// Batch-mode AL (paper Sec. VI future work: "running multiple
  /// simulations in parallel at each iteration"): each round selects
  /// `batch_size` candidates WITHOUT intermediate model updates (already
  /// selected candidates are just excluded from the view), then reveals
  /// all of them and retrains once. Less greedy than one-at-a-time but
  /// needs 1/batch_size as many scheduling rounds. Records carry the
  /// global selection index; a round's records share the same post-round
  /// RMSE. max_iterations counts selections, not rounds.
  TrajectoryResult run_batched(const Strategy& strategy,
                               std::size_t batch_size,
                               const data::Partition& partition,
                               stats::Rng& rng) const;

  /// The paper's memory limit rule: 95% of the largest log10 memory
  /// response (Sec. V-B).
  static double paper_memory_limit_log10(const data::Dataset& dataset);

 private:
  std::unique_ptr<gp::Kernel> make_kernel() const;

  /// The trajectory driver behind run_with_partition and run_resumable
  /// (checkpoint == nullptr disables checkpointing entirely; shared ==
  /// nullptr recomputes every distance cache locally).
  TrajectoryResult run_trajectory(const Strategy& strategy,
                                  const data::Partition& partition,
                                  stats::Rng& rng,
                                  const CheckpointConfig* checkpoint,
                                  const SharedBatchContext* shared) const;

  /// Hex digest over every option, the memory limit, the strategy
  /// identity (including batch size), and the full partition contents
  /// (the partition is what the seed determines, so hashing it captures
  /// the seed's effect).
  std::string trajectory_fingerprint(std::string_view strategy_name,
                                     const data::Partition& partition) const;

  data::Dataset dataset_;   // original units (responses used for metrics)
  AlOptions options_;
  linalg::Matrix x_scaled_; // unit-cube features
  std::vector<double> log_cost_;
  std::vector<double> log_mem_;
  double limit_log10_ = 0.0;
};

}  // namespace alamr::core
