#pragma once

// Cholesky factorization for the GPR kernel matrix K_y = K + sigma_n^2 I
// (paper Eq. 3) and the log-determinant term of the LML (Eq. 8).
//
// GPR kernel matrices are SPD in exact arithmetic but can be numerically
// semi-definite when training points nearly coincide (the dataset contains
// repeated configurations on purpose). `cholesky_with_jitter` escalates a
// diagonal jitter until factorization succeeds, mirroring what mature GP
// libraries (GPy, GPflow, scikit-learn) do.

#include <optional>

#include "alamr/linalg/matrix.hpp"

namespace alamr::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T, plus solve helpers.
class CholeskyFactor {
 public:
  /// Factors SPD matrix `a`. Returns std::nullopt if a non-positive pivot
  /// is encountered (matrix not numerically positive definite).
  static std::optional<CholeskyFactor> factor(const Matrix& a);

  std::size_t size() const noexcept { return l_.rows(); }
  const Matrix& lower() const noexcept { return l_; }

  /// Appends one row/column to the factored matrix in O(n^2): given the new
  /// off-diagonal block `row` (length size()) and the new diagonal entry
  /// `diag`, grows L by one row so that it factors the bordered matrix
  /// [[A, row], [row^T, diag]]. Performs exactly the same floating-point
  /// operations `factor()` would perform for the last column of the bordered
  /// matrix, so the result is bit-identical to a from-scratch factorization.
  /// Returns false — leaving the factor unchanged — when the Schur
  /// complement diag - ||L^{-1} row||^2 is not numerically positive (the
  /// caller should fall back to a full, possibly jittered, refactor).
  bool extend(std::span<const double> row, double diag);

  /// Solves L z = b (forward substitution).
  Vector solve_lower(std::span<const double> b) const;

  /// Solves L^T z = b (backward substitution).
  Vector solve_upper(std::span<const double> b) const;

  /// Solves A x = b via the two triangular solves.
  Vector solve(std::span<const double> b) const;

  /// Solves A X = B column-by-column.
  Matrix solve_matrix(const Matrix& b) const;

  /// A^{-1} (needed by the analytic LML gradient, which uses
  /// K_y^{-1} - alpha alpha^T). Computes only the lower triangle of the
  /// symmetric inverse (one scratch vector, no temporary matrices) and
  /// mirrors it.
  Matrix inverse() const;

  /// log|A| = 2 * sum_i log L_ii (the model-complexity term of Eq. 8).
  double log_det() const;

 private:
  explicit CholeskyFactor(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// Result of jittered factorization: the factor plus the jitter that was
/// actually added to the diagonal (0 when the clean factorization worked).
struct JitteredCholesky {
  CholeskyFactor factor;
  double jitter = 0.0;
};

/// Factors `a`, escalating diagonal jitter from `initial_jitter` by x10 up
/// to `max_jitter` (both relative to the mean diagonal). Throws
/// std::runtime_error if the matrix cannot be factored even at max jitter.
JitteredCholesky cholesky_with_jitter(const Matrix& a,
                                      double initial_jitter = 1e-12,
                                      double max_jitter = 1e-4);

}  // namespace alamr::linalg
