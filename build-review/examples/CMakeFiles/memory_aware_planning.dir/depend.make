# Empty dependencies file for memory_aware_planning.
# This may be replaced when dependencies are built.
