#include "alamr/amr/render.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace alamr::amr {

std::string render_pgm(const QuadtreeMesh& mesh, RenderField field, int width,
                       int height) {
  if (width < 2 || height < 2) {
    throw std::invalid_argument("render_pgm: raster too small");
  }
  const ShockBubbleProblem& problem = mesh.problem();

  // Sample the field at pixel centers.
  std::vector<double> samples(static_cast<std::size_t>(width) *
                              static_cast<std::size_t>(height));
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int r = 0; r < height; ++r) {
    // Row 0 renders the TOP of the domain.
    const double y = (height - r - 0.5) / height * problem.height;
    for (int c = 0; c < width; ++c) {
      const double x = (c + 0.5) / width * problem.width;
      double value = 0.0;
      switch (field) {
        case RenderField::kDensity: value = mesh.rho_at(x, y); break;
        case RenderField::kRefinementLevel:
          value = static_cast<double>(mesh.level_at(x, y));
          break;
      }
      samples[static_cast<std::size_t>(r) * width + c] = value;
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
  }
  const double range = hi > lo ? hi - lo : 1.0;

  std::ostringstream os;
  os << "P2\n" << width << ' ' << height << "\n255\n";
  for (int r = 0; r < height; ++r) {
    for (int c = 0; c < width; ++c) {
      const double value = samples[static_cast<std::size_t>(r) * width + c];
      const int gray = static_cast<int>(
          std::clamp(255.0 * (value - lo) / range, 0.0, 255.0));
      os << gray << (c + 1 == width ? '\n' : ' ');
    }
  }
  return os.str();
}

void write_pgm(const QuadtreeMesh& mesh, RenderField field,
               const std::filesystem::path& path, int width, int height) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path.string());
  out << render_pgm(mesh, field, width, height);
  if (!out) throw std::runtime_error("write_pgm: write failed " + path.string());
}

}  // namespace alamr::amr
