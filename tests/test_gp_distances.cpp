// PairwiseDistances and the distance-cached kernel paths.
//
// The contract under test is BITWISE: every cached evaluation must
// reproduce exactly the doubles the direct path produces, because the
// golden-trajectory suite compares serialized trajectories byte-for-byte
// with the caches enabled by default. Comparisons here therefore go
// through the raw bit patterns, not a tolerance.

#include "alamr/gp/distances.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "alamr/core/trace.hpp"
#include "alamr/gp/gpr.hpp"
#include "alamr/gp/kernels.hpp"
#include "alamr/linalg/matrix.hpp"
#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::gp;
using alamr::linalg::Matrix;
using alamr::stats::Rng;
namespace trace = alamr::core::trace;

Matrix random_points(std::size_t n, std::size_t d, Rng& rng) {
  Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.uniform(0.0, 1.0);
  }
  return x;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

::testing::AssertionResult bitwise_equal(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (!same_bits(a(i, j), b(i, j))) {
        return ::testing::AssertionFailure()
               << "entry (" << i << ", " << j << ") differs: " << a(i, j)
               << " vs " << b(i, j);
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// --- cache construction ----------------------------------------------------

TEST(PairwiseDistances, TrainMatchesSquaredDistance) {
  Rng rng(17);
  const Matrix x = random_points(9, 3, rng);
  const PairwiseDistances dist = PairwiseDistances::train(x);
  ASSERT_TRUE(dist.symmetric());
  ASSERT_EQ(dist.rows(), 9u);
  ASSERT_EQ(dist.cols(), 9u);
  ASSERT_EQ(dist.dim(), 3u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_TRUE(same_bits(dist.squared()(i, i), 0.0));
    for (std::size_t j = 0; j < i; ++j) {
      const double direct = alamr::linalg::squared_distance(x.row(i), x.row(j));
      EXPECT_TRUE(same_bits(dist.squared()(i, j), direct)) << i << "," << j;
      EXPECT_TRUE(same_bits(dist.squared()(j, i), direct)) << j << "," << i;
    }
  }
}

TEST(PairwiseDistances, CrossMatchesSquaredDistance) {
  Rng rng(18);
  const Matrix x = random_points(5, 4, rng);
  const Matrix y = random_points(7, 4, rng);
  const PairwiseDistances dist = PairwiseDistances::cross(x, y);
  ASSERT_FALSE(dist.symmetric());
  ASSERT_EQ(dist.rows(), 5u);
  ASSERT_EQ(dist.cols(), 7u);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      const double direct = alamr::linalg::squared_distance(x.row(i), y.row(j));
      EXPECT_TRUE(same_bits(dist.squared()(i, j), direct)) << i << "," << j;
    }
  }
}

TEST(PairwiseDistances, ComponentsMatchPerDimensionDifferences) {
  Rng rng(19);
  const Matrix x = random_points(6, 3, rng);
  const Matrix y = random_points(4, 3, rng);
  PairwiseDistances dist = PairwiseDistances::cross(x, y);
  EXPECT_FALSE(dist.has_components());
  dist.ensure_components();
  ASSERT_TRUE(dist.has_components());
  for (std::size_t d = 0; d < 3; ++d) {
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        const double diff = x(i, d) - y(j, d);
        EXPECT_TRUE(same_bits(dist.component(d)(i, j), diff * diff));
      }
    }
  }
}

TEST(PairwiseDistances, AppendRowEqualsRebuildSymmetric) {
  Rng rng(20);
  const Matrix x = random_points(8, 3, rng);
  const Matrix grown = random_points(1, 3, rng);

  PairwiseDistances incremental = PairwiseDistances::train(x);
  incremental.ensure_components();
  incremental.append_x_row(grown.row(0));

  Matrix all(9, 3);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 3; ++j) all(i, j) = x(i, j);
  }
  for (std::size_t j = 0; j < 3; ++j) all(8, j) = grown(0, j);
  PairwiseDistances rebuilt = PairwiseDistances::train(all);
  rebuilt.ensure_components();

  EXPECT_TRUE(bitwise_equal(incremental.squared(), rebuilt.squared()));
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_TRUE(bitwise_equal(incremental.component(d), rebuilt.component(d)))
        << "component " << d;
  }
}

TEST(PairwiseDistances, AppendRowEqualsRebuildRectangular) {
  Rng rng(21);
  const Matrix x = random_points(5, 2, rng);
  const Matrix y = random_points(6, 2, rng);
  const Matrix grown = random_points(1, 2, rng);

  PairwiseDistances incremental = PairwiseDistances::cross(x, y);
  incremental.append_x_row(grown.row(0));

  Matrix all(6, 2);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 2; ++j) all(i, j) = x(i, j);
  }
  for (std::size_t j = 0; j < 2; ++j) all(5, j) = grown(0, j);
  const PairwiseDistances rebuilt = PairwiseDistances::cross(all, y);

  EXPECT_TRUE(bitwise_equal(incremental.squared(), rebuilt.squared()));
}

// --- cached kernel evaluation ---------------------------------------------

std::vector<std::unique_ptr<Kernel>> all_kernels() {
  std::vector<std::unique_ptr<Kernel>> kernels;
  kernels.push_back(std::make_unique<ConstantKernel>(2.5));
  kernels.push_back(std::make_unique<WhiteKernel>(0.3));
  kernels.push_back(std::make_unique<RbfKernel>(0.8));
  kernels.push_back(
      std::make_unique<RbfArdKernel>(std::vector<double>{0.5, 1.7, 0.9}));
  kernels.push_back(
      std::make_unique<MaternKernel>(MaternKernel::Nu::kThreeHalves, 1.2));
  kernels.push_back(
      std::make_unique<MaternKernel>(MaternKernel::Nu::kFiveHalves, 0.6));
  kernels.push_back(std::make_unique<RationalQuadraticKernel>(1.1, 0.7));
  // The paper's composite: amplitude * RBF + noise.
  kernels.push_back(std::make_unique<SumKernel>(
      std::make_unique<ProductKernel>(std::make_unique<ConstantKernel>(1.4),
                                      std::make_unique<RbfKernel>(0.9)),
      std::make_unique<WhiteKernel>(0.05)));
  // An ARD composite, so Sum/Product prepare_distances forwarding is hit.
  kernels.push_back(std::make_unique<ProductKernel>(
      std::make_unique<ConstantKernel>(0.8),
      std::make_unique<RbfArdKernel>(std::vector<double>{1.3, 0.4, 2.0})));
  return kernels;
}

TEST(CachedKernels, GramBitwiseEqualsDirect) {
  Rng rng(22);
  const Matrix x = random_points(10, 3, rng);
  for (const auto& kernel : all_kernels()) {
    PairwiseDistances dist = PairwiseDistances::train(x);
    kernel->prepare_distances(dist);
    EXPECT_TRUE(bitwise_equal(kernel->gram_cached(dist), kernel->gram(x)))
        << kernel->describe();
  }
}

TEST(CachedKernels, GramWithGradientsBitwiseEqualsDirect) {
  Rng rng(23);
  const Matrix x = random_points(10, 3, rng);
  for (const auto& kernel : all_kernels()) {
    PairwiseDistances dist = PairwiseDistances::train(x);
    kernel->prepare_distances(dist);
    std::vector<Matrix> direct_grads;
    std::vector<Matrix> cached_grads;
    const Matrix direct = kernel->gram_with_gradients(x, direct_grads);
    const Matrix cached =
        kernel->gram_with_gradients_cached(dist, cached_grads);
    EXPECT_TRUE(bitwise_equal(cached, direct)) << kernel->describe();
    ASSERT_EQ(cached_grads.size(), direct_grads.size()) << kernel->describe();
    for (std::size_t g = 0; g < direct_grads.size(); ++g) {
      EXPECT_TRUE(bitwise_equal(cached_grads[g], direct_grads[g]))
          << kernel->describe() << " grad " << g;
    }
  }
}

TEST(CachedKernels, CrossBitwiseEqualsDirect) {
  Rng rng(24);
  const Matrix x = random_points(8, 3, rng);
  const Matrix y = random_points(5, 3, rng);
  for (const auto& kernel : all_kernels()) {
    PairwiseDistances dist = PairwiseDistances::cross(x, y);
    kernel->prepare_distances(dist);
    EXPECT_TRUE(
        bitwise_equal(kernel->cross_cached(dist), kernel->cross(x, y)))
        << kernel->describe();
  }
}

TEST(CachedKernels, ArdRejectsMismatchedCache) {
  const RbfArdKernel kernel(std::vector<double>{1.0, 1.0});
  Rng rng(25);
  const Matrix wrong_dim = random_points(4, 3, rng);
  PairwiseDistances dist = PairwiseDistances::train(wrong_dim);
  kernel.prepare_distances(dist);
  EXPECT_THROW(kernel.gram_cached(dist), std::invalid_argument);

  // Right dimension but components never prepared.
  const Matrix right_dim = random_points(4, 2, rng);
  PairwiseDistances bare = PairwiseDistances::train(right_dim);
  EXPECT_THROW(kernel.gram_cached(bare), std::invalid_argument);
}

// --- GPR integration -------------------------------------------------------

std::unique_ptr<Kernel> paper_kernel(std::size_t /*dim*/) {
  return std::make_unique<SumKernel>(
      std::make_unique<ProductKernel>(std::make_unique<ConstantKernel>(1.0),
                                      std::make_unique<RbfKernel>(1.0)),
      std::make_unique<WhiteKernel>(1e-2));
}

// --- dataset-wide base + gathered subset caches ----------------------------

Matrix gather(const Matrix& x, std::span<const std::size_t> rows) {
  Matrix out(rows.size(), x.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) out(i, j) = x(rows[i], j);
  }
  return out;
}

TEST(DistanceBase, MatchesSquaredDistance) {
  Rng rng(40);
  const Matrix x = random_points(11, 4, rng);
  const DistanceBase base(x);
  EXPECT_EQ(base.size(), 11u);
  EXPECT_EQ(base.dim(), 4u);
  for (std::size_t i = 0; i < 11; ++i) {
    EXPECT_TRUE(same_bits(base.squared(i, i), 0.0));
    for (std::size_t j = 0; j < i; ++j) {
      const double direct = alamr::linalg::squared_distance(x.row(i), x.row(j));
      EXPECT_TRUE(same_bits(base.squared(i, j), direct)) << i << "," << j;
      EXPECT_TRUE(same_bits(base.squared(j, i), direct)) << j << "," << i;
    }
  }
}

TEST(DistanceBase, GatheredTrainBitwiseEqualsRebuild) {
  Rng rng(41);
  const Matrix x = random_points(14, 3, rng);
  const DistanceBase base(x);
  // Unsorted subset: the gather must not depend on row order (it relies
  // on squared_distance(a, b) being bit-equal to (b, a)).
  const std::vector<std::size_t> rows = {9, 2, 13, 0, 7, 4};
  const PairwiseDistances gathered =
      PairwiseDistances::train_from_base(base, rows);
  const PairwiseDistances rebuilt = PairwiseDistances::train(gather(x, rows));
  ASSERT_TRUE(gathered.symmetric());
  EXPECT_TRUE(bitwise_equal(gathered.squared(), rebuilt.squared()));
  EXPECT_TRUE(bitwise_equal(gathered.x(), rebuilt.x()));
}

TEST(DistanceBase, GatheredCrossBitwiseEqualsRebuild) {
  Rng rng(42);
  const Matrix x = random_points(16, 5, rng);
  const DistanceBase base(x);
  const std::vector<std::size_t> rows_x = {3, 15, 8};
  const std::vector<std::size_t> rows_y = {1, 0, 11, 6, 9};
  const PairwiseDistances gathered =
      PairwiseDistances::cross_from_base(base, rows_x, rows_y);
  const PairwiseDistances rebuilt =
      PairwiseDistances::cross(gather(x, rows_x), gather(x, rows_y));
  ASSERT_FALSE(gathered.symmetric());
  EXPECT_TRUE(bitwise_equal(gathered.squared(), rebuilt.squared()));
  EXPECT_TRUE(bitwise_equal(gathered.x(), rebuilt.x()));
  EXPECT_TRUE(bitwise_equal(gathered.y(), rebuilt.y()));
}

TEST(DistanceBase, GatheredCachesSupportComponentsAndAppend) {
  Rng rng(43);
  const Matrix x = random_points(10, 3, rng);
  const DistanceBase base(x);
  const std::vector<std::size_t> rows = {5, 1, 8};

  // ARD components derive from the gathered x, exactly as rebuilt.
  PairwiseDistances gathered = PairwiseDistances::train_from_base(base, rows);
  PairwiseDistances rebuilt = PairwiseDistances::train(gather(x, rows));
  gathered.ensure_components();
  rebuilt.ensure_components();
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_TRUE(bitwise_equal(gathered.component(d), rebuilt.component(d)));
  }

  // The AL append path layers per-trajectory growth on a gathered cache.
  gathered.append_x_row(x.row(2));
  rebuilt.append_x_row(x.row(2));
  EXPECT_TRUE(bitwise_equal(gathered.squared(), rebuilt.squared()));
}

TEST(DistanceBase, RejectsOutOfRangeRows) {
  Rng rng(44);
  const Matrix x = random_points(6, 2, rng);
  const DistanceBase base(x);
  const std::vector<std::size_t> bad = {1, 6};
  EXPECT_THROW(PairwiseDistances::train_from_base(base, bad),
               std::out_of_range);
  const std::vector<std::size_t> good = {0, 3};
  EXPECT_THROW(PairwiseDistances::cross_from_base(base, good, bad),
               std::out_of_range);
  EXPECT_THROW(PairwiseDistances::cross_from_base(base, bad, good),
               std::out_of_range);
}

TEST(GprDistanceCache, FitFromBaseBitwiseEqualsFit) {
  Rng rng(45);
  const Matrix x = random_points(20, 3, rng);
  const DistanceBase base(x);
  const std::vector<std::size_t> rows = {17, 3, 9, 0, 12, 5, 19, 8};
  const Matrix x_sub = gather(x, rows);
  std::vector<double> y(rows.size());
  for (double& v : y) v = rng.uniform(-1.0, 1.0);
  const Matrix q = random_points(7, 3, rng);

  GaussianProcessRegressor plain(paper_kernel(3), {.restarts = 1});
  GaussianProcessRegressor based(paper_kernel(3), {.restarts = 1});
  Rng rng_a(77);
  Rng rng_b(77);
  plain.fit(x_sub, y, rng_a);
  based.fit(x_sub, y, rng_b, &base, rows);

  const Prediction pa = plain.predict(q);
  const Prediction pb = based.predict(q);
  ASSERT_EQ(pa.mean.size(), pb.mean.size());
  for (std::size_t i = 0; i < pa.mean.size(); ++i) {
    EXPECT_TRUE(same_bits(pa.mean[i], pb.mean[i])) << i;
    EXPECT_TRUE(same_bits(pa.stddev[i], pb.stddev[i])) << i;
  }

  const std::vector<std::size_t> short_rows = {1, 2};
  Rng rng_c(77);
  EXPECT_THROW(based.fit(x_sub, y, rng_c, &base, short_rows),
               std::invalid_argument);
}

TEST(GprDistanceCache, PredictFromCrossMatchesPredict) {
  Rng rng(26);
  const Matrix x = random_points(30, 3, rng);
  std::vector<double> y(30);
  for (double& v : y) v = rng.uniform(-1.0, 1.0);
  const Matrix q = random_points(12, 3, rng);

  GaussianProcessRegressor gpr(paper_kernel(3), {.restarts = 0});
  gpr.fit(x, y, rng);

  const Prediction direct = gpr.predict(q);
  const Matrix k_star = gpr.kernel().cross(x, q);
  const Prediction via_cross = gpr.predict_from_cross(k_star, q);
  ASSERT_EQ(via_cross.mean.size(), direct.mean.size());
  for (std::size_t i = 0; i < direct.mean.size(); ++i) {
    EXPECT_TRUE(same_bits(via_cross.mean[i], direct.mean[i])) << i;
    EXPECT_TRUE(same_bits(via_cross.stddev[i], direct.stddev[i])) << i;
  }

  EXPECT_THROW(gpr.predict_from_cross(Matrix(3, 12), q),
               std::invalid_argument);
}

TEST(GprDistanceCache, FitEvaluationsHitTheCache) {
  const bool was_enabled = trace::enabled();
  trace::set_enabled(true);
  trace::TraceCollector collector;
  {
    const trace::ScopedCollector scope(collector);
    Rng rng(27);
    const Matrix x = random_points(24, 3, rng);
    std::vector<double> y(24);
    for (double& v : y) v = rng.uniform(-1.0, 1.0);

    GaussianProcessRegressor gpr(
        paper_kernel(3), {.restarts = 1, .max_opt_iterations = 15});
    gpr.fit(x, y, rng);
    gpr.fit_add_point(x.row(0), 0.25, rng);
  }
  trace::set_enabled(was_enabled);

  const trace::TraceReport report = collector.report();
  // fit() builds the train cache once; fit_add_point extends it instead of
  // rebuilding.
  EXPECT_EQ(report.counter("gp.dist_cache_build"), 1u);
  EXPECT_EQ(report.counter("gp.dist_cache_extend"), 1u);
  // Every L-BFGS objective evaluation consumed the cache; none fell back
  // to the direct feature-walking path.
  EXPECT_GT(report.counter("gpr.dist_cache_hit"), 0u);
  EXPECT_EQ(report.counter("gpr.dist_cache_miss"), 0u);
}

}  // namespace
