// Quickstart: cost-aware Active Learning over a database of AMR
// performance measurements.
//
//   1. load (or generate) the dataset of (config -> cost, memory) samples;
//   2. build the Algorithm-1 simulator with Init/Active/Test partitions;
//   3. run the paper's RandGoodness strategy and uniform random sampling
//      on the SAME partition — cost-aware AL tracks the same error while
//      spending a small fraction of the node-hours.

#include <cstdio>

#include "alamr/core/simulator.hpp"
#include "example_utils.hpp"

int main(int argc, char** argv) {
  using namespace alamr;
  const std::optional<std::string> trace_path =
      examples::trace_flag(argc, argv);

  const data::Dataset dataset = examples::load_dataset();
  std::printf("Dataset: %zu samples, %zu features\n", dataset.size(),
              dataset.dim());

  core::AlOptions options;
  options.n_test = dataset.size() / 3;
  options.n_init = 50;
  options.max_iterations = 60;

  const core::AlSimulator simulator(dataset, options);
  std::printf("Memory limit (paper rule): %.2f MB\n",
              simulator.memory_limit_mb());

  // Same partition for both strategies: the only difference is WHICH
  // experiments each one chooses to pay for.
  stats::Rng partition_rng(2024);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);

  const core::RandGoodness cost_aware;  // paper Sec. IV-B, base 10
  const core::RandUniform uniform;
  stats::Rng r1(7);
  stats::Rng r2(7);
  const core::TrajectoryResult aware =
      simulator.run_with_partition(cost_aware, partition, r1);
  const core::TrajectoryResult blind =
      simulator.run_with_partition(uniform, partition, r2);

  examples::print_rule();
  std::printf("%5s | %-12s %12s %12s | %-12s %12s %12s\n", "iter",
              "RandGoodness", "cum.cost", "RMSE(cost)", "RandUniform",
              "cum.cost", "RMSE(cost)");
  examples::print_rule();
  for (std::size_t i = 9; i < aware.iterations.size(); i += 10) {
    std::printf("%5zu | %-12s %12.3f %12.4f | %-12s %12.3f %12.4f\n", i + 1, "",
                aware.iterations[i].cumulative_cost,
                aware.iterations[i].rmse_cost, "",
                blind.iterations[i].cumulative_cost,
                blind.iterations[i].rmse_cost);
  }
  examples::print_rule();

  const auto& last_aware = aware.iterations.back();
  const auto& last_blind = blind.iterations.back();
  std::printf(
      "\nAfter %zu selections on the same partition:\n"
      "  RandGoodness spent %.3f node-hours (RMSE %.4f)\n"
      "  RandUniform  spent %.3f node-hours (RMSE %.4f)\n"
      "  -> cost-aware AL paid %.1fx less for its experiments.\n",
      aware.iterations.size(), last_aware.cumulative_cost,
      last_aware.rmse_cost, last_blind.cumulative_cost, last_blind.rmse_cost,
      last_blind.cumulative_cost / last_aware.cumulative_cost);
  examples::finish_trace(trace_path);
  return 0;
}
