// Surrogate exploration: what the paper says trained models are *for*
// (Sec. II-C): answering inverse questions across the whole input space,
// not just locating an optimum.
//
// Fits cost and memory GPRs on the full dataset, then:
//   1. reports leave-some-out prediction quality on a holdout;
//   2. answers "cheapest configuration with maxlevel = 6 that stays under
//      the memory limit" by scanning the full 1920-point grid through the
//      surrogates;
//   3. prints a cost landscape slice over (mx, maxlevel).

#include <cstdio>

#include "alamr/amr/campaign.hpp"
#include "alamr/core/metrics.hpp"
#include "alamr/core/simulator.hpp"
#include "example_utils.hpp"

int main() {
  using namespace alamr;

  const data::Dataset dataset = examples::load_dataset();

  // Pre-process exactly like the AL pipeline.
  const data::FeatureScaler scaler = data::FeatureScaler::fit(dataset.x);
  const linalg::Matrix x_scaled = scaler.transform(dataset.x);
  const std::vector<double> log_cost = data::log10_transform(dataset.cost);
  const std::vector<double> log_mem = data::log10_transform(dataset.memory);

  // Holdout split: last fifth for validation.
  const std::size_t n = dataset.size();
  const std::size_t n_train = n - n / 5;
  std::vector<std::size_t> train_rows(n_train);
  std::vector<std::size_t> test_rows(n - n_train);
  for (std::size_t i = 0; i < n_train; ++i) train_rows[i] = i;
  for (std::size_t i = n_train; i < n; ++i) test_rows[i - n_train] = i;

  const auto gather_rows = [&](std::span<const std::size_t> rows) {
    linalg::Matrix out(rows.size(), x_scaled.cols());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (std::size_t c = 0; c < x_scaled.cols(); ++c) {
        out(r, c) = x_scaled(rows[r], c);
      }
    }
    return out;
  };
  const auto gather_values = [](std::span<const double> v,
                                std::span<const std::size_t> rows) {
    std::vector<double> out(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) out[r] = v[rows[r]];
    return out;
  };

  gp::GprOptions fit_options;
  fit_options.restarts = 2;
  gp::GaussianProcessRegressor gpr_cost(gp::make_paper_kernel(), fit_options);
  gp::GaussianProcessRegressor gpr_mem(gp::make_paper_kernel(), fit_options);
  stats::Rng rng(11);
  const linalg::Matrix x_train = gather_rows(train_rows);
  gpr_cost.fit(x_train, gather_values(log_cost, train_rows), rng);
  gpr_mem.fit(x_train, gather_values(log_mem, train_rows), rng);

  std::printf("Cost model:   %s  (LML %.1f)\n", gpr_cost.kernel().describe().c_str(),
              gpr_cost.log_marginal_likelihood());
  std::printf("Memory model: %s  (LML %.1f)\n", gpr_mem.kernel().describe().c_str(),
              gpr_mem.log_marginal_likelihood());

  // 1. Holdout quality.
  const linalg::Matrix x_test = gather_rows(test_rows);
  const auto cost_pred = data::exp10_transform(gpr_cost.predict_mean(x_test));
  const auto mem_pred = data::exp10_transform(gpr_mem.predict_mean(x_test));
  const auto cost_actual = gather_values(dataset.cost, test_rows);
  const auto mem_actual = gather_values(dataset.memory, test_rows);
  std::printf("\nHoldout (%zu rows): RMSE(cost) = %.4f node-hours, "
              "RMSE(memory) = %.4f MB\n",
              test_rows.size(), core::rmse(cost_pred, cost_actual),
              core::rmse(mem_pred, mem_actual));

  // 2. Inverse query over the full grid.
  const double limit_log10 = core::AlSimulator::paper_memory_limit_log10(dataset);
  amr::CampaignOptions grid_options;
  const amr::Campaign campaign(grid_options);
  const auto grid = campaign.full_grid();
  linalg::Matrix grid_x(grid.size(), 5);
  for (std::size_t g = 0; g < grid.size(); ++g) {
    grid_x(g, 0) = grid[g].p;
    grid_x(g, 1) = grid[g].mx;
    grid_x(g, 2) = grid[g].max_level;
    grid_x(g, 3) = grid[g].r0;
    grid_x(g, 4) = grid[g].rhoin;
  }
  const linalg::Matrix grid_scaled = scaler.transform(grid_x);
  const auto grid_cost = gpr_cost.predict_mean(grid_scaled);
  const auto grid_mem = gpr_mem.predict_mean(grid_scaled);

  std::size_t best = grid.size();
  for (std::size_t g = 0; g < grid.size(); ++g) {
    if (grid[g].max_level != 6) continue;
    if (grid_mem[g] >= limit_log10) continue;
    if (best == grid.size() || grid_cost[g] < grid_cost[best]) best = g;
  }
  if (best < grid.size()) {
    std::printf(
        "\nCheapest maxlevel-6 configuration under L_mem = %.2f MB:\n"
        "  p=%d, mx=%d, r0=%.3f, rhoin=%.2f  ->  predicted %.3f node-hours, "
        "%.2f MB\n",
        std::pow(10.0, limit_log10), grid[best].p, grid[best].mx,
        grid[best].r0, grid[best].rhoin, std::pow(10.0, grid_cost[best]),
        std::pow(10.0, grid_mem[best]));
  } else {
    std::printf("\nNo maxlevel-6 configuration is predicted to fit under the "
                "memory limit.\n");
  }

  // 3. Cost landscape slice at p=8, r0=0.35, rhoin=0.1.
  std::printf("\nPredicted cost [node-hours] at p=8, r0=0.35, rhoin=0.1:\n");
  std::printf("%10s", "mx \\ lvl");
  for (const int lvl : grid_options.level_values) std::printf("%10d", lvl);
  std::printf("\n");
  for (const int mx : grid_options.mx_values) {
    std::printf("%10d", mx);
    for (const int lvl : grid_options.level_values) {
      linalg::Matrix q(1, 5);
      q(0, 0) = 8.0;
      q(0, 1) = mx;
      q(0, 2) = lvl;
      q(0, 3) = 0.35;
      q(0, 4) = 0.1;
      const auto pred = gpr_cost.predict_mean(scaler.transform(q));
      std::printf("%10.3f", std::pow(10.0, pred[0]));
    }
    std::printf("\n");
  }
  return 0;
}
