# Empty dependencies file for alamr_stats.
# This may be replaced when dependencies are built.
