file(REMOVE_RECURSE
  "CMakeFiles/tests_stats.dir/test_stats_bootstrap.cpp.o"
  "CMakeFiles/tests_stats.dir/test_stats_bootstrap.cpp.o.d"
  "CMakeFiles/tests_stats.dir/test_stats_descriptive.cpp.o"
  "CMakeFiles/tests_stats.dir/test_stats_descriptive.cpp.o.d"
  "CMakeFiles/tests_stats.dir/test_stats_distributions.cpp.o"
  "CMakeFiles/tests_stats.dir/test_stats_distributions.cpp.o.d"
  "CMakeFiles/tests_stats.dir/test_stats_kde.cpp.o"
  "CMakeFiles/tests_stats.dir/test_stats_kde.cpp.o.d"
  "CMakeFiles/tests_stats.dir/test_stats_rng.cpp.o"
  "CMakeFiles/tests_stats.dir/test_stats_rng.cpp.o.d"
  "tests_stats"
  "tests_stats.pdb"
  "tests_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
