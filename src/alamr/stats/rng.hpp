#pragma once

// Deterministic, seedable random number generation for reproducible
// Active-Learning trajectories and dataset partitioning.
//
// We deliberately avoid std::mt19937 + std::*_distribution because their
// outputs are not guaranteed to be identical across standard library
// implementations; every stochastic result in this repository must be
// bit-reproducible given a seed.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace alamr::stats {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Passes BigCrush when used as a generator on its own; here it is
/// the recommended seeder for xoshiro-family generators.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256++ — the repository-wide pseudo-random generator.
///
/// Small (4x64-bit state), fast, and with well-studied statistical quality.
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with standard algorithms, but all distribution sampling in this codebase
/// goes through the member functions below for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next 64 uniformly distributed bits.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Unbiased uniform integer in [0, n). Requires n > 0.
  /// Uses Lemire's nearly-divisionless rejection method.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal deviate (Marsaglia polar method; deterministic given
  /// the seed, unlike std::normal_distribution).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Derives an independent child generator; used to hand one RNG stream to
  /// each parallel AL trajectory so results do not depend on thread
  /// interleaving.
  Rng split() noexcept;

  /// Fisher–Yates shuffle with this generator (deterministic given seed).
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// A random permutation of {0, 1, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Complete generator snapshot — the 256-bit xoshiro state plus the
  /// Marsaglia-polar cache — so a checkpointed trajectory can resume its
  /// stream mid-pair and stay bit-identical to an uninterrupted run.
  struct State {
    std::array<std::uint64_t, 4> words{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  State save_state() const noexcept {
    return State{state_, cached_normal_, has_cached_normal_};
  }

  void restore_state(const State& state) noexcept {
    state_ = state.words;
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace alamr::stats
