#pragma once

// Batch execution and aggregation of AL trajectories (paper Sec. IV-B:
// "By processing a large number of trajectories, we can reason about the
// statistical properties of the algorithms independent of the initial
// conditions"). Mirrors the paper's multiprocessing batch mode with the
// shared ThreadPool (alamr/core/parallel.hpp); every trajectory gets an
// independent derived RNG stream so results do not depend on scheduling
// or thread count.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "alamr/core/simulator.hpp"

namespace alamr::core {

struct BatchOptions {
  std::size_t trajectories = 5;
  /// 0 = the ALAMR_THREADS env var, falling back to
  /// std::thread::hardware_concurrency() (see alamr/core/parallel.hpp).
  std::size_t threads = 0;
  std::uint64_t seed = 1234;

  /// Per-trajectory checkpointing for run_batch_isolated: trajectory t
  /// saves to <checkpoint_dir>/trajectory_<t>.json every
  /// `checkpoint_stride` passes. Empty = no checkpointing. The directory
  /// is created if missing.
  std::filesystem::path checkpoint_dir;
  std::size_t checkpoint_stride = 10;
  /// Resume trajectories whose checkpoint file exists (completed
  /// trajectories deleted theirs, so a re-run after a crash redoes only
  /// the unfinished ones — and redoes them byte-identically).
  bool resume = false;

  /// Build one immutable SharedBatchContext (the dataset-wide pairwise-
  /// distance base) up front and hand it read-only to every trajectory,
  /// so per-trajectory distance-cache (re)builds become gathers instead
  /// of O(k^2 d) recomputation. Results are bitwise identical either way;
  /// the flag exists so tests and benches can compare both paths.
  bool shared_context = true;
};

/// Runs `options.trajectories` independent trajectories of `strategy`
/// (fresh random partition each). Results are ordered by trajectory index
/// regardless of thread scheduling.
std::vector<TrajectoryResult> run_batch(const AlSimulator& simulator,
                                        const Strategy& strategy,
                                        const BatchOptions& options);

/// One slot of a fault-isolated batch.
struct BatchTrajectory {
  bool ok = false;
  std::string error;        // what() of the poisoning exception when !ok
  TrajectoryResult result;  // valid only when ok
};

/// run_batch with trajectory-level fault isolation: a trajectory that
/// throws (model blow-up, checkpoint mismatch, injected fault escalation)
/// yields a failed slot carrying the error text instead of killing the
/// whole batch. Honors BatchOptions::checkpoint_dir/stride/resume via
/// AlSimulator::run_resumable. Slot order is by trajectory index
/// regardless of thread scheduling.
std::vector<BatchTrajectory> run_batch_isolated(const AlSimulator& simulator,
                                                const Strategy& strategy,
                                                const BatchOptions& options);

/// Per-iteration scalar extracted from a trajectory.
enum class Metric {
  kRmseCost,
  kRmseMem,
  kRmseCostWeighted,
  kCumulativeCost,
  kCumulativeRegret,
  kActualCost,
};

std::vector<double> extract_series(const TrajectoryResult& trajectory,
                                   Metric metric);

/// Cross-trajectory aggregate at one iteration.
struct CurvePoint {
  std::size_t iteration = 0;
  double mean = 0.0;
  double lo = 0.0;       // min across trajectories
  double hi = 0.0;       // max across trajectories
  std::size_t count = 0; // trajectories still running at this iteration
};

/// Mean/min/max of `metric` at each iteration across trajectories
/// (trajectories that stopped early simply drop out of later points).
std::vector<CurvePoint> aggregate_curve(
    std::span<const TrajectoryResult> trajectories, Metric metric);

}  // namespace alamr::core
