#!/usr/bin/env bash
# Records the seed-vs-optimized micro-benchmark medians into per-PR JSON
# files: BENCH_PR3.json (distance cache / blocked linalg / incremental
# predict), BENCH_PR5.json (fused batched posterior / arena pass / SIMD
# kernels) and BENCH_PR6.json (shared-context trajectory batches, plus
# end-to-end fig4/fig5 wallclock at every runtime dispatch level).
#
# Each benchmark in the sets is registered twice: /0 replays the seed
# (pre-PR) recipe through the public reference APIs, /1 runs the
# optimized path.  Both arms live in the same binary so they share the
# compiler, flags, and process state.  We take the median over several
# repetitions because this box is a 1-vCPU VM with 10-30% run-to-run
# drift; medians over >= 5 repetitions are stable to a few percent.
#
# Usage: scripts/bench.sh [build-dir]     (default: build)

set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
repetitions="${ALAMR_BENCH_REPS:-7}"

if [[ ! -x "$build_dir/bench/bench_micro_perf" ]]; then
  cmake -B "$build_dir" -S . > /dev/null
  cmake --build "$build_dir" -j "$(nproc)" --target bench_micro_perf > /dev/null
fi

# record_set <output.json> <benchmark-filter-regex>
#
# Per-PR records are write-once: an existing file documents the numbers
# measured when that PR landed and later reruns must not rewrite history
# (the bench-trend gate compares against them). Delete the file or set
# ALAMR_BENCH_FORCE=1 to re-record.
record_set() {
  local out_json="$1"
  local filter="$2"
  if [[ -f "$out_json" && "${ALAMR_BENCH_FORCE:-0}" != "1" ]]; then
    echo "$out_json exists; skipping (ALAMR_BENCH_FORCE=1 re-records)"
    return 0
  fi
  local raw
  raw=$(mktemp /tmp/bench_set.XXXXXX.json)

  "$build_dir/bench/bench_micro_perf" \
    --benchmark_filter="$filter" \
    --benchmark_repetitions="$repetitions" \
    --benchmark_report_aggregates_only=true \
    --benchmark_min_time=0.3 \
    --benchmark_out="$raw" --benchmark_out_format=json

  python3 - "$raw" "$repetitions" "$out_json" <<'EOF'
import json, sys

raw_path, reps, out_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]
with open(raw_path) as f:
    report = json.load(f)

# Collect medians, keyed by "BM_Name/size" with the trailing /0 (seed
# recipe) or /1 (optimized) arm split off. Median aggregates carry any
# user counters (e.g. BM_ArenaPass's allocs_per_iter) along. real_time
# is reported in each benchmark's own time_unit; normalize to ns.
TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
arms = {}
for b in report["benchmarks"]:
    name = b["name"]
    if not name.endswith("_median"):
        continue
    base = name[: -len("_median")]
    family, size, arm = base.rsplit("/", 2)
    entry = {"real_time": b["real_time"] * TO_NS[b.get("time_unit", "ns")]}
    entry.update({k: v for k, v in b.items()
                  if k == "allocs_per_iter"})
    arms.setdefault(f"{family}/{size}", {})[arm] = entry

out = {
    "generated_by": "scripts/bench.sh",
    "repetitions": reps,
    "statistic": "median real_time, ns/op",
    "context": {
        "host": report["context"].get("host_name", ""),
        "num_cpus": report["context"].get("num_cpus"),
        "mhz_per_cpu": report["context"].get("mhz_per_cpu"),
        # Dispatch decision this process made at startup (bench main()
        # registers both as custom context): numbers from different hosts
        # are only comparable at the same kernel tier.
        "simd_level": report["context"].get("simd_level", ""),
        "cpu_features": report["context"].get("cpu_features", ""),
    },
    "benchmarks": {},
}
for key in sorted(arms):
    pair = arms[key]
    if "0" not in pair or "1" not in pair:
        continue
    base_ns, opt_ns = pair["0"]["real_time"], pair["1"]["real_time"]
    row = {
        "seed_recipe_ns": round(base_ns, 1),
        "optimized_ns": round(opt_ns, 1),
        "speedup": round(base_ns / opt_ns, 2),
    }
    if "allocs_per_iter" in pair["0"]:
        row["seed_allocs_per_iter"] = round(pair["0"]["allocs_per_iter"], 1)
    if "allocs_per_iter" in pair["1"]:
        row["optimized_allocs_per_iter"] = round(pair["1"]["allocs_per_iter"], 1)
    out["benchmarks"][key] = row

with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

width = max(len(k) for k in out["benchmarks"])
print(f"\n{'benchmark':{width}}  {'seed ns/op':>12}  {'opt ns/op':>12}  speedup")
for key, row in out["benchmarks"].items():
    print(f"{key:{width}}  {row['seed_recipe_ns']:>12.0f}  "
          f"{row['optimized_ns']:>12.0f}  {row['speedup']:>6.2f}x")
print(f"\nwrote {out_path}")
EOF
  rm -f "$raw"
}

# active_level <requested-level>: what the dispatcher actually selects
# under ALAMR_SIMD_LEVEL=<requested> (requests above the host's ceiling
# clamp down). Read from the bench binary's own context block so the
# answer comes from the exact dispatch code being measured.
active_level() {
  ALAMR_SIMD_LEVEL="$1" "$build_dir/bench/bench_micro_perf" \
    --benchmark_filter='BM_SimdKernels/256/0$' --benchmark_min_time=0.01 \
    --benchmark_format=json 2> /dev/null |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["context"].get("simd_level",""))'
}

# record_fig_wallclock <output.json>: appends a "fig_wallclock" section —
# end-to-end seconds for the paper-figure drivers (fig4 regret, fig5 RMSE
# progression; ALAMR_QUICK with the P5-protocol 3 trajectories x 60
# iterations) at every dispatch level this host supports. Clamped
# duplicate levels are skipped, so an avx2-only host records scalar and
# avx2. Requires data/amr_dataset.csv to exist already (run any fig
# bench once first) so the one-time campaign generation never lands in a
# timing.
record_fig_wallclock() {
  local out_json="$1"
  if [[ "${ALAMR_BENCH_FORCE:-0}" != "1" ]] &&
    python3 -c 'import json,sys; sys.exit(0 if "fig_wallclock" in json.load(open(sys.argv[1])) else 1)' \
      "$out_json" 2> /dev/null; then
    echo "$out_json already has fig_wallclock; skipping"
    return 0
  fi
  local tmp
  tmp=$(mktemp /tmp/bench_fig.XXXXXX.json)
  echo "{}" > "$tmp"
  for level in scalar avx2 avx512; do
    local active
    active=$(active_level "$level")
    if [[ "$active" != "$level" ]]; then
      echo "fig wallclock: skipping $level (host clamps to $active)"
      continue
    fi
    for fig in bench_fig4_regret bench_fig5_rmse_progress; do
      local secs
      secs=$( { TIMEFORMAT=%R; time ALAMR_QUICK=1 ALAMR_TRAJECTORIES=3 \
        ALAMR_ITERATIONS=60 ALAMR_SIMD_LEVEL="$level" \
        "$build_dir/bench/$fig" > /dev/null; } 2>&1 | tail -1 )
      echo "fig wallclock: $fig @ $level: ${secs}s"
      python3 - "$tmp" "$fig" "$level" "$secs" <<'EOF'
import json, sys
path, fig, level, secs = sys.argv[1:]
with open(path) as f:
    d = json.load(f)
d.setdefault(fig, {})[level] = float(secs)
with open(path, "w") as f:
    json.dump(d, f)
EOF
    done
  done
  python3 - "$out_json" "$tmp" <<'EOF'
import json, sys
out_path, fig_path = sys.argv[1:]
with open(out_path) as f:
    out = json.load(f)
with open(fig_path) as f:
    out["fig_wallclock"] = json.load(f)
out["fig_wallclock_statistic"] = (
    "end-to-end seconds, ALAMR_QUICK=1 ALAMR_TRAJECTORIES=3 "
    "ALAMR_ITERATIONS=60, one run")
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"appended fig_wallclock to {out_path}")
EOF
  rm -f "$tmp"
}

record_set BENCH_PR3.json \
  'BM_(KernelDistanceCache|BlockedCholesky|CholeskyInverse|RefitObjective|RefitObjectiveValue|IncrementalPredict)/'

record_set BENCH_PR5.json \
  'BM_(PredictBatch|ArenaPass|SimdKernels)/'

# PR6: /0 arm = PR5 recipe (every trajectory recomputes its own distance
# caches), /1 arm = shared immutable DistanceBase built once per batch.
record_set BENCH_PR6.json \
  'BM_TrajectoryBatch/'

record_fig_wallclock BENCH_PR6.json

# PR7: /0 arm = exact PosteriorBackend (the seed GPR recipe through the
# interface), /1 arm = subset-of-data backend at capacity 128. Records
# the fit and candidate-sweep costs the approximate backends buy down.
record_set BENCH_PR7.json \
  'BM_Backend(Fit|PredictBatch)/'

# record_backend_scaling <output.json>: appends the §P7 end-to-end
# scaling experiment (bench_p7_backend_scaling: exact vs approximate
# backends on fig4-style trajectories at 10^3-10^5 candidates, plus the
# >=10x-vs-extrapolated-exact acceptance check) under the
# "p7_backend_scaling" key. Write-once like record_set.
record_backend_scaling() {
  local out_json="$1"
  if [[ -f "$out_json" && "${ALAMR_BENCH_FORCE:-0}" != "1" ]] &&
     python3 -c 'import json,sys; sys.exit(0 if "p7_backend_scaling" in json.load(open(sys.argv[1])) else 1)' "$out_json"; then
    echo "$out_json already has p7_backend_scaling; skipping (ALAMR_BENCH_FORCE=1 re-records)"
    return 0
  fi
  cmake --build "$build_dir" -j "$(nproc)" --target bench_p7_backend_scaling > /dev/null
  local tmp
  tmp=$(mktemp /tmp/p7_scaling.XXXXXX.json)
  "$build_dir/bench/bench_p7_backend_scaling" > "$tmp"
  python3 - "$out_json" "$tmp" <<'EOF'
import json, sys
out_path, scaling_path = sys.argv[1:]
with open(out_path) as f:
    out = json.load(f)
with open(scaling_path) as f:
    out["p7_backend_scaling"] = json.load(f)
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"appended p7_backend_scaling to {out_path}")
EOF
  rm -f "$tmp"
}

record_backend_scaling BENCH_PR7.json

# PR8: /0 arm = per-sweep full panel re-solve (O(M n^2)), /1 arm = the
# cross-iteration candidate panel resuming the forward substitution at
# the one appended row (O(M n)). The fig wallclock record captures the
# end-to-end effect with the panel default-on.
record_set BENCH_PR8.json \
  'BM_SweepIncremental/'

record_fig_wallclock BENCH_PR8.json

# PR10: /0 arm = every tenant served down the per-session-serial
# reference path (fresh O(M n^2) sweep per suggest, inline retrains),
# /1 arm = the multi-tenant session engine (drain() micro-batches the
# suggests into panel resumes, full refits on off-path retrain workers
# with work-stealing joins). Same stride, byte-identical trajectories;
# acceptance: >= 3x at 256 sessions.
record_set BENCH_PR10.json \
  'BM_SessionThroughput/'
