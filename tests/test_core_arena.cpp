// Tests for the workspace-arena integration in the AL pass loop
// (ISSUE 5): the batched posterior path must be byte-identical to the
// per-candidate path, the arena's footprint must be flat after the
// pre-warmed first pass (the check.sh zero-allocation gate reads the
// arena.* counters this suite pins), and no exit path — censored
// continue, kRetryNextCandidate, early stop — may leak arena scopes.

#include "alamr/core/simulator.hpp"

#include <gtest/gtest.h>

#include <string>

#include "alamr/core/export.hpp"
#include "alamr/core/faults.hpp"
#include "synthetic_dataset.hpp"

namespace {

using namespace alamr::core;
using alamr::stats::Rng;
namespace faults = alamr::core::faults;

AlOptions arena_options(std::size_t max_iters = 12) {
  AlOptions options;
  options.n_test = 40;
  options.n_init = 10;
  options.max_iterations = max_iters;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 25;
  options.refit.max_opt_iterations = 5;
  return options;
}

const alamr::data::Dataset& dataset() {
  static const auto d = alamr::testing::synthetic_amr_dataset(120, 4242);
  return d;
}

TEST(ArenaGate, SteadyStateFootprintIsFlat) {
  AlOptions options = arena_options();
  options.trace = true;
  const AlSimulator sim(dataset(), options);
  Rng rng(7);
  const TrajectoryResult traj = sim.run(MaxSigma(), rng);

  // The fused path ran and its temporaries lived in the arena.
  EXPECT_GT(traj.trace.counter("predict.batch_calls"), 0u);
  EXPECT_GT(traj.trace.counter("predict.batch_queries"), 0u);
  EXPECT_GT(traj.trace.counter("arena.bytes_peak"), 0u);
  EXPECT_GE(traj.trace.counter("arena.bytes_peak"),
            traj.trace.counter("arena.inuse_peak_bytes"));

  // The gate itself: the pre-warm sizes the arena once, so capacity
  // never grows after the first pass and every pass scope was closed.
  EXPECT_EQ(traj.trace.counter("arena.steady_growth"), 0u);
  EXPECT_EQ(traj.trace.counter("arena.scope_leaks"), 0u);
  EXPECT_EQ(traj.trace.counter("arena.chunk_allocs"), 1u)
      << "pre-warm should cover the whole trajectory in one chunk";
}

TEST(ArenaGate, BatchedOffDisablesArenaCounters) {
  AlOptions options = arena_options();
  options.trace = true;
  options.batched_predict = false;
  const AlSimulator sim(dataset(), options);
  Rng rng(7);
  const TrajectoryResult traj = sim.run(MaxSigma(), rng);
  EXPECT_EQ(traj.trace.counter("predict.batch_calls"), 0u);
  EXPECT_EQ(traj.trace.counter("arena.bytes_peak"), 0u);
  EXPECT_EQ(traj.trace.counter("arena.chunk_allocs"), 0u);
}

// The load-bearing equivalence: batched_predict only changes WHERE the
// posterior is computed (fused kernels + arena vs per-candidate heap
// path), never the bits. Byte-compare the full trajectory CSV across the
// flag, on both cross-matrix maintenance modes.
TEST(ArenaGate, BatchedPredictIsByteIdenticalToScalarPath) {
  for (const bool incremental_cross : {true, false}) {
    AlOptions batched = arena_options();
    batched.incremental_cross = incremental_cross;
    batched.batched_predict = true;
    AlOptions scalar = batched;
    scalar.batched_predict = false;

    Rng rng_a(11);
    const TrajectoryResult t_batched =
        AlSimulator(dataset(), batched).run(MaxSigma(), rng_a);
    Rng rng_b(11);
    const TrajectoryResult t_scalar =
        AlSimulator(dataset(), scalar).run(MaxSigma(), rng_b);

    EXPECT_EQ(trajectory_to_csv(t_batched), trajectory_to_csv(t_scalar))
        << "incremental_cross=" << incremental_cross;
  }
}

// kRetryNextCandidate exercises the pass loop's `continue` exit: the
// censored pass must release its arena scope (the satellite regression)
// and the retry trajectory must stay byte-identical across the flag.
TEST(ArenaGate, RetryPolicyLeaksNoScopesAndStaysByteIdentical) {
  AlOptions batched = arena_options(8);
  batched.trace = true;
  batched.failures.plan = faults::FaultPlan::parse("acquire.oom:hits=1|3");
  batched.failures.policy = CensorPolicy::kRetryNextCandidate;
  AlOptions scalar = batched;
  scalar.batched_predict = false;

  Rng rng_a(13);
  const TrajectoryResult t_batched =
      AlSimulator(dataset(), batched).run(RandGoodness(), rng_a);
  Rng rng_b(13);
  const TrajectoryResult t_scalar =
      AlSimulator(dataset(), scalar).run(RandGoodness(), rng_b);

  EXPECT_GT(t_batched.censored_count, 0u) << "fault plan did not fire";
  EXPECT_EQ(t_batched.trace.counter("arena.scope_leaks"), 0u);
  EXPECT_EQ(t_batched.trace.counter("arena.steady_growth"), 0u);
  EXPECT_EQ(trajectory_to_csv(t_batched), trajectory_to_csv(t_scalar));
}

// Censored passes under kDropCensored take the same early `continue`;
// cover it too so both censor exits pin the scope bookkeeping.
TEST(ArenaGate, DropCensoredLeaksNoScopes) {
  AlOptions options = arena_options(8);
  options.trace = true;
  options.failures.plan = faults::FaultPlan::parse("acquire.timeout:hits=0|2");
  options.failures.policy = CensorPolicy::kDropCensored;
  const AlSimulator sim(dataset(), options);
  Rng rng(17);
  const TrajectoryResult traj = sim.run(RandGoodness(), rng);
  EXPECT_GT(traj.censored_count, 0u) << "fault plan did not fire";
  EXPECT_EQ(traj.trace.counter("arena.scope_leaks"), 0u);
  EXPECT_EQ(traj.trace.counter("arena.steady_growth"), 0u);
}

}  // namespace
