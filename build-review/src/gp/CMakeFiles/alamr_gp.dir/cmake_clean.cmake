file(REMOVE_RECURSE
  "CMakeFiles/alamr_gp.dir/gpr.cpp.o"
  "CMakeFiles/alamr_gp.dir/gpr.cpp.o.d"
  "CMakeFiles/alamr_gp.dir/kernels.cpp.o"
  "CMakeFiles/alamr_gp.dir/kernels.cpp.o.d"
  "CMakeFiles/alamr_gp.dir/local.cpp.o"
  "CMakeFiles/alamr_gp.dir/local.cpp.o.d"
  "libalamr_gp.a"
  "libalamr_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alamr_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
