#!/usr/bin/env bash
# Kill/resume harness for the durable checkpoint layer (DESIGN.md §14):
# SIGKILLs a checkpointing online-AL run mid-flight, then deliberately
# tears the newest generation on disk — the worst state a kill landing
# inside write() can leave — and asserts that the resumed process
#
#   1. quarantines the torn frame to <ckpt>.bad instead of consuming it,
#   2. falls back to the newest intact generation (<ckpt>.1), and
#   3. finishes with an experiment log byte-identical to a run that was
#      never interrupted.
#
# The harness is examples/online_al with --checkpoint/--stride/--resume:
# its oracle keys the machine noise by configuration (not a shared
# stream), so a resumed process reproduces the dead process's
# measurements exactly. Lines starting with '#' (checkpoint/resume
# announcements) and the wall-clock summary line are excluded from the
# byte comparison; every experiment row, the simulated bill, and the
# trained model's final prediction must match exactly.
#
# Usage: scripts/crash_resume.sh [build-dir]     (default: build)

set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
bin="$build/examples/online_al"
if [[ ! -x "$bin" ]]; then
  echo "=== [crash-resume] building $bin ==="
  cmake -B "$build" -S . > /dev/null
  cmake --build "$build" -j "$(nproc)" --target online_al > /dev/null
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
ckpt="$work/online.ckpt"

filter() { grep -v '^#' "$1" | grep -v 's wall'; }

echo "=== [crash-resume] reference run (never interrupted) ==="
"$bin" > "$work/ref.raw" 2>&1
filter "$work/ref.raw" > "$work/ref.txt"

echo "=== [crash-resume] checkpointing run, SIGKILL once generations rotate ==="
"$bin" --checkpoint "$ckpt" --stride 1 > "$work/killed.raw" 2>&1 &
pid=$!
for _ in $(seq 1 400); do
  [[ -f "$ckpt.1" ]] && break
  sleep 0.02
done
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true
if [[ ! -f "$ckpt" || ! -f "$ckpt.1" ]]; then
  echo "FAILED: run exited before writing two checkpoint generations"
  exit 1
fi

# Simulate the torn write the kill can leave behind: cut the newest
# generation mid-frame. The CRC32 frame makes the damage detectable.
size="$(stat -c%s "$ckpt")"
truncate -s "$((size / 2))" "$ckpt"

echo "=== [crash-resume] resume from the torn on-disk state ==="
"$bin" --checkpoint "$ckpt" --stride 1 --resume > "$work/resumed.raw" 2>&1
filter "$work/resumed.raw" > "$work/resumed.txt"

if [[ ! -f "$ckpt.bad" ]]; then
  echo "FAILED: torn generation was not quarantined to $ckpt.bad"
  exit 1
fi
if ! diff -u "$work/ref.txt" "$work/resumed.txt"; then
  echo "FAILED: resumed run diverged from the uninterrupted reference"
  exit 1
fi
echo "crash/resume: torn frame quarantined, recovery from $ckpt.1 clean,"
echo "resumed output byte-identical to the uninterrupted run."
