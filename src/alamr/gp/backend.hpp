#pragma once

// Posterior backends for the AL inner loop (DESIGN.md §12).
//
// The simulator's Algorithm-1 loop needs exactly four things from its
// per-response surrogate: fit on the learned set, append one acquired
// point with a warm refit, a posterior sweep over the candidate pool, and
// a posterior-mean sweep over the test set. `PosteriorBackend` names that
// contract so the exact-Cholesky `GaussianProcessRegressor` (backend
// zero — byte-for-byte the seed recipe, including its incremental
// K(X_train, X_active) bookkeeping and trace counters) is swappable for
// approximate posteriors that break the O(n^3) wall:
//
//   - kSubsetOfData: an inducing-point (Nyström-style subset-of-data)
//     backend that trains the exact GPR on a bounded, deterministically
//     chosen subset of the learned sequence. With capacity >= n it IS the
//     exact backend bit for bit; over capacity, fits are O(m^3) and
//     candidate sweeps O(m^2 M) for fixed m, so 10^5-candidate pools are
//     in reach.
//   - kLocalExperts: a partitioned local-experts backend built on
//     gp/local.hpp's LocalGprEnsemble with nearest-centroid routing and a
//     global-prior fallback — k experts of ~n/k points each, fitted and
//     queried independently.
//
// Approximate backends are pinned by tolerance goldens and RMSE-parity
// gates (tests/backend_parity.hpp); the exact backend stays pinned by the
// byte-for-byte golden configs.

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "alamr/core/resilience.hpp"
#include "alamr/gp/gpr.hpp"
#include "alamr/gp/local.hpp"
#include "alamr/linalg/workspace.hpp"
#include "alamr/stats/rng.hpp"

namespace alamr::gp {

enum class BackendKind {
  kExact,         // GaussianProcessRegressor, the byte-pinned seed recipe
  kSubsetOfData,  // bounded inducing subset of the learned sequence
  kLocalExperts,  // LocalGprEnsemble, nearest-centroid routing
  kPriorMean,     // constant training-mean posterior: cannot fail
};

std::string to_string(BackendKind kind);

/// Backend selection and sizing. The exact-path plumbing flags mirror
/// AlOptions (the simulator copies them in before constructing backends);
/// they only affect kExact, which must keep reproducing every historical
/// configuration bit for bit.
struct BackendOptions {
  BackendKind kind = BackendKind::kExact;

  // kExact plumbing (AlOptions::incremental_refit / incremental_cross /
  // batched_predict). kSubsetOfData honors incremental_refit for its
  // within-capacity appends; kLocalExperts always refits incrementally
  // inside the touched expert.
  bool incremental_refit = true;
  bool incremental_cross = true;
  bool batched_predict = true;
  /// Cross-iteration candidate panel (DESIGN.md §13): cache Z = L^{-1} K*
  /// across sweeps and extend it by one row per incremental refit instead
  /// of re-solving O(M n^2). Effective on kExact (with incremental_cross
  /// and batched_predict) and kSubsetOfData (inside a window epoch);
  /// byte-identical on or off.
  bool panel_predict = true;

  /// kSubsetOfData: training-set capacity m. The subset is a pure
  /// function of the learned sequence — the first `anchors` points plus
  /// the most recent m - anchors — so a resumed trajectory reconstructs
  /// it from the learned rows alone.
  std::size_t inducing_points = 256;
  /// 0 = inducing_points / 2.
  std::size_t sod_anchors = 0;

  /// kLocalExperts: number of centroids (fixed at the initial fit), the
  /// size at which a region first gets its own model (smaller regions
  /// answer with the global prior), and the Lloyd-iteration count of the
  /// deterministic k-means seeding.
  std::size_t experts = 8;
  std::size_t min_expert_size = 8;
  std::size_t kmeans_iterations = 4;
};

/// One model's view of the candidate pool. `rows` lists each candidate's
/// row in the bound DistanceBase (empty when no base is in play). During
/// `add_point` the simulator may pass a ref whose `x` is stale while
/// `rows` is current — a backend bound to a base must gather features or
/// distances through `rows`.
struct CandidateRef {
  const Matrix& x;
  std::span<const std::size_t> rows;
};

/// Posterior over the last candidate pool. Spans stay valid until the
/// next predict_candidates / add_point / fit call on the backend, or the
/// enclosing workspace scope rewinds — whichever comes first.
struct PosteriorSpans {
  std::span<const double> mean;
  std::span<const double> stddev;
};

/// Arena sizing hook: `outputs` doubles coexist for the whole pass (the
/// mean/stddev spans handed back), `scratch` is the backend's transient
/// peak while predicting. The simulator pre-sizes the pass arena at
/// max(out_1 + scratch_1, out_1 + out_2 + scratch_2) — for two exact
/// backends exactly the historical 4*m0 + z_peak bound.
struct WorkspaceBound {
  std::size_t outputs = 0;
  std::size_t scratch = 0;
};

/// The surrogate-model contract of the AL inner loop. One instance serves
/// one response (cost or memory) of one trajectory; instances are not
/// thread-safe and not shared across trajectories.
class PosteriorBackend {
 public:
  virtual ~PosteriorBackend() = default;

  virtual std::string_view name() const noexcept = 0;
  virtual BackendKind kind() const noexcept = 0;
  virtual bool fitted() const noexcept = 0;
  virtual std::size_t training_size() const noexcept = 0;

  /// Fitting-effort knobs for subsequent fits (thorough initial fit,
  /// cheap warm refits — AlOptions::initial_fit / refit).
  virtual void set_fit_options(const GprOptions& options) = 0;

  /// Fits on the learned set. When `base` is non-null, `rows` lists each
  /// x row's index in base.x() and distance caches are gathered instead
  /// of recomputed. The backend keeps its own copy of the training data;
  /// callers may mutate x/y afterwards.
  virtual void fit(const Matrix& x, std::span<const double> y,
                   stats::Rng& rng, const DistanceBase* base = nullptr,
                   std::span<const std::size_t> rows = {}) = 0;

  /// Acquisition step: appends (x, y) — dataset row `row` when a base is
  /// bound — and warm-refits. `after` describes the candidate pool AFTER
  /// the acquired candidate was removed (for cross-cache row appends);
  /// pass nullptr when the pool is empty or unknown.
  virtual void add_point(std::span<const double> x, double y,
                         std::size_t row, stats::Rng& rng,
                         const CandidateRef* after) = 0;

  /// Posterior mean/stddev over the candidate pool. Cheap storage may be
  /// carved from `ws` (freed when the caller's pass scope rewinds).
  /// `with_mean = false` is a hint that the caller only needs the stddev
  /// sweep (uncertainty-only acquisition): a backend MAY then return an
  /// empty mean span and the caller recovers individual means through
  /// candidate_mean(). Backends that ignore the hint still fill both.
  virtual PosteriorSpans predict_candidates(const CandidateRef& pool,
                                            linalg::Workspace& ws,
                                            bool with_mean = true) = 0;

  /// Posterior mean of candidate `local` of the last predict_candidates
  /// pool, bit-identical to the entry a full mean sweep would have
  /// produced. Only required of backends that honor `with_mean = false`;
  /// the default signals the caller misread the contract.
  virtual double candidate_mean(std::size_t local) const {
    (void)local;
    throw std::logic_error(
        "PosteriorBackend::candidate_mean: backend returned a full mean "
        "sweep; read PosteriorSpans::mean instead");
  }

  /// Candidate `local` of the last predict_candidates pool was removed
  /// (acquired or censored); drops any cached per-candidate state.
  virtual void remove_candidate(std::size_t local) = 0;

  /// Posterior mean at arbitrary query points (test-set RMSE). `rows`
  /// lists the queries' DistanceBase rows when a base is bound.
  virtual std::vector<double> predict_mean(
      const Matrix& x, std::span<const std::size_t> rows = {}) = 0;

  /// Full posterior at arbitrary query points, no candidate-pool caching
  /// (run_batched and direct library use).
  virtual Prediction predict(const Matrix& x) const = 0;

  /// Log marginal likelihood of the backend's training data at its
  /// current hyperparameters; ensemble backends report the sum of their
  /// experts' (independent-likelihood) terms.
  virtual double lml() const = 0;

  /// Hyperparameter state, concatenated in a backend-defined but stable
  /// order. set_log_params places them before a resume fit.
  virtual std::vector<double> log_params() const = 0;
  virtual void set_log_params(std::span<const double> theta) = 0;

  /// Opaque auxiliary state for checkpoint round-trips: anything NOT
  /// derivable from (learned rows, labels, theta) — e.g. kLocalExperts'
  /// centroids, frozen at the initial fit. Backends without such state
  /// return "".
  virtual std::string save_state() const { return {}; }
  /// Installs state captured by save_state() before a resume fit. Throws
  /// std::runtime_error on malformed input.
  virtual void restore_state(const std::string& state) { (void)state; }

  /// Pre-sizes internal containers for `extra` future add_point calls.
  virtual void reserve_additional(std::size_t extra) = 0;

  /// Pass-arena bound for a trajectory starting at n0 training points and
  /// m0 candidates with `budget` acquisitions ahead. {0, 0} = the backend
  /// does not use the arena.
  virtual WorkspaceBound workspace_bound(std::size_t n0, std::size_t m0,
                                         std::size_t budget) const = 0;

  /// Snapshot hook for off-path retraining (DESIGN.md §15): a deep,
  /// independent copy of the full backend state — training data, factor
  /// caches, candidate-panel carry-over, and (for ResilientBackend) the
  /// rung/breaker/health resilience state. Background retrain workers fit
  /// the clone against a frozen view of the session and atomically swap it
  /// in; the original keeps serving reads meanwhile. Any bound
  /// DistanceBase is shared (it is immutable), not copied.
  virtual std::unique_ptr<PosteriorBackend> clone() const = 0;
};

/// Builds a backend: the kernel prototype is owned by the backend (expert
/// backends clone it per region), `fit_options` seeds the first fit's
/// effort (adjust later fits via set_fit_options).
std::unique_ptr<PosteriorBackend> make_backend(const BackendOptions& options,
                                               std::unique_ptr<Kernel> kernel,
                                               const GprOptions& fit_options);

/// Graceful-degradation decorator over a PosteriorBackend (DESIGN.md §14).
///
/// Wraps the configured backend and guards every model operation with a
/// per-model circuit breaker fed by two channels: resilience events noted
/// by lower layers while the operation runs (injected cholesky.non_psd /
/// opt.diverge fires), and recoverable exceptions escaping the operation
/// itself. Repeated failures trip the breaker and step a degradation
/// ladder derived from the configured kind:
///
///   kExact        -> kSubsetOfData -> kPriorMean
///   kSubsetOfData -> kPriorMean
///   kLocalExperts -> kSubsetOfData -> kPriorMean
///
/// Each step rebuilds the next rung from the decorator's retained copy of
/// the learned set with an rng-free, optimization-free fit (deterministic:
/// no stream draws, so fault schedules and resumed runs stay aligned).
/// While degraded, a streak of successful operations triggers a half-open
/// probe of the rung above (restored at its last known hyperparameters);
/// success recovers, failure stays put. Health is kHealthy on rung 0,
/// kDegraded below, kHalted when the bottom rung itself failed. Everything
/// is surfaced through resilience.* trace counters.
///
/// Happy path: with resilience disabled or nothing failing, every call is
/// a plain virtual forward plus integer bookkeeping — no rng draws, no FP
/// work — so disarmed trajectories are byte-identical to the undecorated
/// backend (golden-pinned).
class ResilientBackend final : public PosteriorBackend {
 public:
  using KernelFactory = std::function<std::unique_ptr<Kernel>()>;

  ResilientBackend(const BackendOptions& options,
                   const core::resilience::Options& resilience,
                   KernelFactory kernel_factory,
                   const GprOptions& fit_options);
  ~ResilientBackend() override;

  // -- PosteriorBackend -----------------------------------------------------
  std::string_view name() const noexcept override;
  /// The CONFIGURED kind, not the active rung's: fingerprints and resume
  /// compatibility key on configuration, which degradation does not change.
  BackendKind kind() const noexcept override;
  bool fitted() const noexcept override;
  std::size_t training_size() const noexcept override;
  void set_fit_options(const GprOptions& options) override;
  void fit(const Matrix& x, std::span<const double> y, stats::Rng& rng,
           const DistanceBase* base = nullptr,
           std::span<const std::size_t> rows = {}) override;
  void add_point(std::span<const double> x, double y, std::size_t row,
                 stats::Rng& rng, const CandidateRef* after) override;
  PosteriorSpans predict_candidates(const CandidateRef& pool,
                                    linalg::Workspace& ws,
                                    bool with_mean = true) override;
  double candidate_mean(std::size_t local) const override;
  void remove_candidate(std::size_t local) override;
  std::vector<double> predict_mean(
      const Matrix& x, std::span<const std::size_t> rows = {}) override;
  Prediction predict(const Matrix& x) const override;
  double lml() const override;
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> theta) override;
  std::string save_state() const override;
  void restore_state(const std::string& state) override;
  void reserve_additional(std::size_t extra) override;
  WorkspaceBound workspace_bound(std::size_t n0, std::size_t m0,
                                 std::size_t budget) const override;
  /// Deep copy: the inner backend is cloned and the breaker / ladder /
  /// retained-learned-set state is copied, so a snapshot degrades (or
  /// recovers) independently of the original.
  std::unique_ptr<PosteriorBackend> clone() const override;

  // -- Resilience surface ---------------------------------------------------
  core::resilience::Health health() const noexcept;
  /// Current ladder rung (0 = the configured backend).
  std::size_t rung() const noexcept { return rung_; }
  /// The kind actually serving predictions right now.
  BackendKind active_kind() const noexcept { return ladder_[rung_]; }
  const core::resilience::CircuitBreaker& breaker() const noexcept {
    return breaker_;
  }
  /// Feeds an event observed OUTSIDE a guarded operation into this
  /// model's breaker (the simulator attributes injected acquire.timeout
  /// censors here). A resulting trip degrades at the next operation.
  void record_external_event(core::resilience::Event event);

 private:
  struct BreakerListener;
  enum class RetryAfterDegrade { kYes, kNo };

  ResilientBackend(const ResilientBackend& other);

  std::unique_ptr<PosteriorBackend> make_inner(BackendKind kind) const;
  void pre_op();
  void degrade(const char* why);
  void rebuild_at_rung(std::span<const double> theta);
  void maybe_probe_recovery();
  template <typename Fn>
  std::invoke_result_t<Fn&> guarded(const char* op, RetryAfterDegrade retry,
                                    Fn&& fn);

  BackendOptions base_options_;
  core::resilience::Options res_;
  KernelFactory kernel_factory_;
  GprOptions fit_options_;
  std::vector<BackendKind> ladder_;

  // predict() is const in the interface but degradation mutates the
  // decorator; the resilient state is mutable so the const forward can
  // still heal itself.
  mutable std::unique_ptr<PosteriorBackend> inner_;
  mutable std::size_t rung_ = 0;
  mutable core::resilience::CircuitBreaker breaker_;
  mutable core::resilience::Health health_ = core::resilience::Health::kHealthy;
  /// Hyperparameters each abandoned rung held when it was degraded away
  /// (ladder-indexed) — restored by half-open probes.
  mutable std::vector<std::vector<double>> rung_theta_;
  /// Deterministic scratch rng for degrade/probe refits. Those fits run
  /// with optimize=false and restarts=0, which draw nothing — the stream
  /// exists only to satisfy the fit signature.
  mutable stats::Rng repair_rng_;
  /// Per-model retry pacing for guarded operations: seeded backoff over a
  /// virtual clock, so the schedule never reads wall time.
  mutable core::resilience::DeadlineExecutor exec_;

  // Retained copy of the learned set, the raw material for rebuilds.
  Matrix x_store_{0, 0};
  std::vector<double> y_store_;
  std::vector<std::size_t> rows_store_;
  const DistanceBase* base_ = nullptr;
};

/// Wraps the configured backend in a ResilientBackend when
/// `resilience.enabled`, otherwise builds the plain backend. The factory
/// must mint a fresh kernel per call (degradation rungs own their kernel).
std::unique_ptr<PosteriorBackend> make_resilient_backend(
    const BackendOptions& options, const core::resilience::Options& resilience,
    ResilientBackend::KernelFactory kernel_factory,
    const GprOptions& fit_options);

}  // namespace alamr::gp
