// Tests for the workspace arena and the in-place shape operations it
// relies on (DESIGN.md §10): Matrix grow/shrink/push_row/remove_column,
// the in-place Cholesky extend, solve_in_place, and the strided
// solve_lower_block_to — each checked bitwise against the copy-based
// recipe it replaced.

#include "alamr/linalg/workspace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "alamr/linalg/cholesky.hpp"
#include "alamr/linalg/matrix.hpp"
#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::linalg;
using alamr::stats::Rng;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.uniform(-2.0, 2.0);
  }
  return m;
}

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix spd = aat(random_matrix(n, n, rng));
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;
  return spd;
}

TEST(Workspace, AllocBumpsWithinOneChunk) {
  Workspace ws;
  const auto a = ws.alloc(10);
  const auto b = ws.alloc(20);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(b.size(), 20u);
  // Same chunk: b starts exactly where a ended.
  EXPECT_EQ(b.data(), a.data() + 10);
  EXPECT_EQ(ws.doubles_in_use(), 30u);
  EXPECT_EQ(ws.heap_allocations(), 1u);
}

TEST(Workspace, ZerosIsZeroFilled) {
  Workspace ws;
  const auto z = ws.zeros(64);
  EXPECT_TRUE(std::all_of(z.begin(), z.end(), [](double v) { return v == 0.0; }));
}

TEST(Workspace, RewindReusesMemoryWithoutAllocating) {
  Workspace ws;
  const auto mark = ws.mark();
  const auto first = ws.alloc(100);
  ws.rewind(mark);
  EXPECT_EQ(ws.doubles_in_use(), 0u);
  const auto second = ws.alloc(100);
  EXPECT_EQ(second.data(), first.data());
  EXPECT_EQ(ws.heap_allocations(), 1u);
}

TEST(Workspace, GrowsByChunksAndKeepsOldSpansValid) {
  Workspace ws;
  const auto small = ws.alloc(10);
  small[0] = 42.0;
  // Larger than the first chunk's remaining room: forces a second chunk.
  const auto big = ws.alloc(3 * Workspace::kMinChunkDoubles);
  EXPECT_EQ(big.size(), 3 * Workspace::kMinChunkDoubles);
  EXPECT_EQ(ws.heap_allocations(), 2u);
  EXPECT_EQ(small[0], 42.0);  // first chunk untouched
  EXPECT_GE(ws.capacity_doubles(), 3 * Workspace::kMinChunkDoubles + 10);
}

TEST(Workspace, PeakTracksHighWaterAcrossRewinds) {
  Workspace ws;
  const auto mark = ws.mark();
  ws.alloc(500);
  ws.rewind(mark);
  ws.alloc(100);
  EXPECT_EQ(ws.doubles_in_use(), 100u);
  EXPECT_EQ(ws.doubles_peak(), 500u);
  EXPECT_EQ(ws.bytes_peak(), 500u * sizeof(double));
}

TEST(Workspace, PreSizedArenaFirstPassIsHeapFree) {
  Workspace ws(1000);
  EXPECT_EQ(ws.heap_allocations(), 1u);
  ws.alloc(600);
  ws.alloc(400);
  EXPECT_EQ(ws.heap_allocations(), 1u);  // fit in the pre-sized chunk
}

TEST(Workspace, ScopeRewindsOnEveryExitPath) {
  Workspace ws;
  EXPECT_EQ(ws.open_scopes(), 0u);
  {
    const Workspace::Scope outer(ws);
    ws.alloc(10);
    EXPECT_EQ(ws.open_scopes(), 1u);
    {
      const Workspace::Scope inner(ws);
      ws.alloc(20);
      EXPECT_EQ(ws.open_scopes(), 2u);
      EXPECT_EQ(ws.doubles_in_use(), 30u);
    }
    EXPECT_EQ(ws.doubles_in_use(), 10u);  // inner's allocs released
  }
  EXPECT_EQ(ws.open_scopes(), 0u);
  EXPECT_EQ(ws.doubles_in_use(), 0u);
}

TEST(Workspace, ScopeReleasesOnEarlyReturnLikeExit) {
  // Mimics the simulator's censored-`continue` path: the pass Scope must
  // release its memory even when the pass bails out mid-way.
  Workspace ws;
  for (int pass = 0; pass < 5; ++pass) {
    const Workspace::Scope scope(ws);
    ws.alloc(100);
    if (pass % 2 == 0) continue;  // early exit, Scope still rewinds
    ws.alloc(50);
  }
  EXPECT_EQ(ws.doubles_in_use(), 0u);
  EXPECT_EQ(ws.open_scopes(), 0u);
}

TEST(Workspace, ResetKeepsCapacity) {
  Workspace ws;
  ws.alloc(2 * Workspace::kMinChunkDoubles);
  const std::size_t cap = ws.capacity_doubles();
  const std::size_t allocs = ws.heap_allocations();
  ws.reset();
  EXPECT_EQ(ws.doubles_in_use(), 0u);
  EXPECT_EQ(ws.capacity_doubles(), cap);
  ws.alloc(2 * Workspace::kMinChunkDoubles);
  EXPECT_EQ(ws.heap_allocations(), allocs);  // reused, not re-allocated
}

// --- Matrix in-place shape operations --------------------------------

TEST(MatrixInPlace, PushRowMatchesCopyAppend) {
  Rng rng(11);
  const Matrix base = random_matrix(5, 3, rng);
  const Matrix extra = random_matrix(1, 3, rng);

  // Copy-based reference: rebuild with the row appended.
  Matrix expect(6, 3);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 3; ++j) expect(i, j) = base(i, j);
  }
  for (std::size_t j = 0; j < 3; ++j) expect(5, j) = extra(0, j);

  Matrix got = base;
  got.push_row(extra.row(0));
  EXPECT_EQ(max_abs_diff(got, expect), 0.0);
}

TEST(MatrixInPlace, PushRowOntoEmptySetsShape) {
  Matrix m;
  const std::vector<double> row{1.0, 2.0, 3.0};
  m.push_row(row);
  ASSERT_EQ(m.rows(), 1u);
  ASSERT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 2), 3.0);
}

TEST(MatrixInPlace, PushRowRejectsWidthMismatch) {
  Matrix m(2, 3);
  const std::vector<double> row{1.0, 2.0};
  EXPECT_THROW(m.push_row(row), std::invalid_argument);
}

TEST(MatrixInPlace, RemoveColumnMatchesCopyErase) {
  Rng rng(12);
  const Matrix base = random_matrix(4, 6, rng);
  for (std::size_t col = 0; col < 6; ++col) {
    Matrix expect(4, 5);
    for (std::size_t i = 0; i < 4; ++i) {
      std::size_t k = 0;
      for (std::size_t j = 0; j < 6; ++j) {
        if (j != col) expect(i, k++) = base(i, j);
      }
    }
    Matrix got = base;
    got.remove_column(col);
    ASSERT_EQ(got.cols(), 5u);
    EXPECT_EQ(max_abs_diff(got, expect), 0.0) << "col " << col;
  }
}

TEST(MatrixInPlace, RemoveColumnRejectsOutOfRange) {
  Matrix m(2, 3);
  EXPECT_THROW(m.remove_column(3), std::invalid_argument);
}

TEST(MatrixInPlace, GrowZeroFillsAndPreservesPrefix) {
  Rng rng(13);
  const Matrix base = random_matrix(3, 2, rng);
  Matrix got = base;
  got.grow(5, 4);
  ASSERT_EQ(got.rows(), 5u);
  ASSERT_EQ(got.cols(), 4u);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      const double expect = (i < 3 && j < 2) ? base(i, j) : 0.0;
      EXPECT_EQ(got(i, j), expect) << i << "," << j;
    }
  }
  EXPECT_THROW(got.grow(4, 4), std::invalid_argument);  // shrinking via grow
}

TEST(MatrixInPlace, ShrinkKeepsTopLeftBlock) {
  Rng rng(14);
  const Matrix base = random_matrix(5, 4, rng);
  Matrix got = base;
  got.shrink(3, 2);
  ASSERT_EQ(got.rows(), 3u);
  ASSERT_EQ(got.cols(), 2u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) EXPECT_EQ(got(i, j), base(i, j));
  }
  EXPECT_THROW(got.shrink(4, 2), std::invalid_argument);  // growing via shrink
}

TEST(MatrixInPlace, GrowShrinkRoundTripIsIdentity) {
  Rng rng(15);
  const Matrix base = random_matrix(4, 4, rng);
  Matrix got = base;
  got.grow(7, 7);
  got.shrink(4, 4);
  EXPECT_EQ(max_abs_diff(got, base), 0.0);
}

TEST(MatrixInPlace, ReserveMakesPushRowAllocationStable) {
  Matrix m(1, 8);
  m.reserve(64, 8);
  const std::size_t cap = m.capacity();
  const std::vector<double> row(8, 1.5);
  for (int i = 0; i < 63; ++i) m.push_row(row);
  EXPECT_EQ(m.capacity(), cap);
}

// --- Cholesky in-place paths -----------------------------------------

TEST(CholeskyInPlace, ExtendMatchesFromScratchFactor) {
  Rng rng(21);
  const std::size_t n = 9;
  const Matrix full = random_spd(n, rng);

  Matrix head(n - 1, n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = 0; j + 1 < n; ++j) head(i, j) = full(i, j);
  }
  auto grown = CholeskyFactor::factor(head);
  ASSERT_TRUE(grown.has_value());
  std::vector<double> row(n - 1);
  for (std::size_t j = 0; j + 1 < n; ++j) row[j] = full(n - 1, j);
  ASSERT_TRUE(grown->extend(row, full(n - 1, n - 1)));

  const auto direct = CholeskyFactor::factor(full);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(max_abs_diff(grown->lower(), direct->lower()), 0.0);
}

TEST(CholeskyInPlace, RejectedExtendLeavesFactorUsable) {
  Rng rng(22);
  const std::size_t n = 6;
  const Matrix spd = random_spd(n, rng);
  auto factor = CholeskyFactor::factor(spd);
  ASSERT_TRUE(factor.has_value());
  const Matrix lower_before = factor->lower();

  // A new row identical to row 0 with its diagonal lowered makes the
  // extended matrix strictly indefinite (the exactly-singular case,
  // diagonal == spd(0, 0), lands on d == 0 only in the bit-exact scalar
  // chain — SIMD rounding can tip it either way): the extension must be
  // rejected.
  std::vector<double> row(n);
  for (std::size_t j = 0; j < n; ++j) row[j] = spd(0, j);
  EXPECT_FALSE(factor->extend(row, spd(0, 0) - 1.0));

  // In-place rollback: factor is bit-for-bit the pre-extend one.
  EXPECT_EQ(factor->size(), n);
  EXPECT_EQ(max_abs_diff(factor->lower(), lower_before), 0.0);
  const Vector x = factor->solve(std::vector<double>(n, 1.0));
  EXPECT_EQ(x.size(), n);
}

TEST(CholeskyInPlace, SolveInPlaceMatchesSolve) {
  Rng rng(23);
  const std::size_t n = 12;
  const auto factor = CholeskyFactor::factor(random_spd(n, rng));
  ASSERT_TRUE(factor.has_value());
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  const Vector expect = factor->solve(b);
  std::vector<double> got = b;
  factor->solve_in_place(got);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(got[i], expect[i]) << i;
}

TEST(CholeskyInPlace, SolveLowerBlockToMatchesSolveLowerBlock) {
  Rng rng(24);
  const std::size_t n = 10;
  const std::size_t m = 7;
  const auto factor = CholeskyFactor::factor(random_spd(n, rng));
  ASSERT_TRUE(factor.has_value());
  const Matrix b = random_matrix(n, m, rng);

  // Whole block, strided into a wider destination: columns [1, 1 + m) of
  // an n x (m + 3) buffer — the layout predict_batch uses when a thread
  // chunk writes its stripe of the shared scratch.
  const Matrix expect = factor->solve_lower_block(b, 0, m);
  Matrix wide(n, m + 3);
  factor->solve_lower_block_to(b, 0, m, wide.data().data() + 1, m + 3);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(wide(i, j + 1), expect(i, j)) << i << "," << j;
    }
  }

  // Partial column ranges, written tightly at their own offset, agree
  // with the allocating API's sub-blocks.
  for (std::size_t begin = 0; begin < m; begin += 3) {
    const std::size_t end = std::min(begin + 3, m);
    const Matrix part = factor->solve_lower_block(b, begin, end);
    Matrix dst(n, m);
    factor->solve_lower_block_to(b, begin, end, dst.data().data() + begin, m);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = begin; j < end; ++j) {
        EXPECT_EQ(dst(i, j), part(i, j - begin));
      }
    }
  }
}

}  // namespace
