// E4 — paper Fig. 3: the cost-error trade-off. For every algorithm, test
// RMSE of the cost model versus cumulative cost of the selected samples,
// averaged over trajectories. This is the figure where cost-aware
// algorithms win: they reach a given RMSE at a fraction of RandUniform's
// cumulative cost.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"

int main() {
  using namespace alamr;
  bench::print_header(
      "E4: cost-error trade-off (RMSE vs cumulative cost)", "Fig. 3",
      "RandGoodness reaches low RMSE at far lower cumulative cost than "
      "MaxSigma/RandUniform; MinPred stays cheap but plateaus");

  const data::Dataset dataset = bench::load_dataset();
  const core::AlOptions options = bench::al_options(/*n_init=*/50,
                                                    /*iterations=*/200);
  const core::AlSimulator simulator(dataset, options);
  const std::size_t n_traj = bench::trajectories(3);

  std::vector<std::unique_ptr<core::Strategy>> strategies;
  strategies.push_back(std::make_unique<core::RandUniform>());
  strategies.push_back(std::make_unique<core::MaxSigma>());
  strategies.push_back(std::make_unique<core::MinPred>());
  strategies.push_back(std::make_unique<core::RandGoodness>());
  strategies.push_back(
      std::make_unique<core::Rgma>(simulator.memory_limit_log10()));

  std::printf("\n# %zu trajectories per algorithm, %zu AL iterations each\n",
              n_traj, options.max_iterations);
  std::printf("\n%-14s %6s %14s %14s %14s\n", "algorithm", "iter",
              "cum.cost[nh]", "RMSE(cost)", "RMSE(mem)");

  for (const auto& strategy : strategies) {
    core::BatchOptions batch;
    batch.trajectories = n_traj;
    batch.seed = 4242;
    const auto results = core::run_batch(simulator, *strategy, batch);
    const auto cc = core::aggregate_curve(results, core::Metric::kCumulativeCost);
    const auto rmse_c = core::aggregate_curve(results, core::Metric::kRmseCost);
    const auto rmse_m = core::aggregate_curve(results, core::Metric::kRmseMem);
    const std::size_t n = std::min({cc.size(), rmse_c.size(), rmse_m.size()});
    for (std::size_t i = 0; i < n; ++i) {
      if ((i + 1) % 20 == 0 || i + 1 == n || i == 0) {
        std::printf("%-14s %6zu %14.3f %14.4f %14.4f\n",
                    strategy->name().c_str(), i + 1, cc[i].mean, rmse_c[i].mean,
                    rmse_m[i].mean);
      }
    }
    // Efficiency headline: cost to reach 2x the algorithm's final RMSE.
    const double target = 2.0 * rmse_c.back().mean;
    double cost_at_target = cc.back().mean;
    for (std::size_t i = 0; i < n; ++i) {
      if (rmse_c[i].mean <= target) {
        cost_at_target = cc[i].mean;
        break;
      }
    }
    std::printf("%-14s -> final RMSE %.4f at total cost %.2f nh "
                "(reached 2x-final RMSE after %.2f nh)\n\n",
                strategy->name().c_str(), rmse_c.back().mean, cc.back().mean,
                cost_at_target);
  }
  return 0;
}
