// Cross-iteration candidate-panel tests (DESIGN.md §13): the panel sweep
// (GaussianProcessRegressor::predict_batch_panel) must stay BIT-identical
// to the from-scratch predict_batch across every lifecycle event — row
// appends after incremental refits, column drops after acquisitions, and
// the full-rebuild invalidations (theta moves, jittered refactors, fault
// recovery, checkpoint resume). The trajectory-level tests run the whole
// AL loop with the panel on and off and require byte-equal CSVs plus sane
// panel.* trace counters.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "alamr/core/faults.hpp"

#include "alamr/core/export.hpp"
#include "alamr/core/simulator.hpp"
#include "alamr/core/strategies.hpp"
#include "alamr/core/trace.hpp"
#include "alamr/gp/gpr.hpp"
#include "alamr/linalg/workspace.hpp"
#include "alamr/stats/rng.hpp"
#include "synthetic_dataset.hpp"

namespace {

using namespace alamr;
using namespace alamr::gp;
using alamr::linalg::Matrix;
using alamr::linalg::Workspace;
using alamr::stats::Rng;
namespace trace = alamr::core::trace;
namespace faults = alamr::core::faults;

Matrix random_points(std::size_t n, std::size_t dim, Rng& rng) {
  Matrix x(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dim; ++d) x(i, d) = rng.uniform(0.0, 1.0);
  }
  return x;
}

std::vector<double> targets(const Matrix& x, Rng& rng) {
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double s = 0.0;
    for (std::size_t d = 0; d < x.cols(); ++d) s += std::sin(3.0 * x(i, d));
    y[i] = s + rng.normal(0.0, 0.01);
  }
  return y;
}

// --- GPR-level: panel vs from-scratch sweeps through an AL-like cycle ------

TEST(PanelGpr, BitwiseMatchesPredictBatchAcrossAppendRemoveCycles) {
  trace::set_enabled(true);
  Rng rng(41);
  Matrix x = random_points(20, 2, rng);
  const auto y = targets(x, rng);
  GprOptions options;
  options.optimize = false;  // fixed theta: every append stays incremental
  GaussianProcessRegressor gpr(make_paper_kernel(), options);
  gpr.fit(x, y, rng);
  gpr.reserve_additional(12);

  const Matrix pool = random_points(15, 2, rng);
  const std::vector<double> pool_diag = gpr.kernel().diagonal(pool);
  std::vector<std::size_t> alive(pool.rows());
  for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = i;

  Matrix k_star = gpr.kernel().cross(x, pool);
  std::vector<double> diag = pool_diag;
  gpr.panel_reserve(x.rows() + 12, k_star.cols());

  trace::TraceCollector collector;
  std::size_t appended = 0;
  std::size_t dropped = 0;
  {
    const trace::ScopedCollector scope(collector);
    Workspace ws;
    for (std::size_t iter = 0; iter < 8; ++iter) {
      const std::size_t m = k_star.cols();
      std::vector<double> mu_p(m);
      std::vector<double> sd_p(m);
      std::vector<double> mu_b(m);
      std::vector<double> sd_b(m);
      gpr.predict_batch_panel(k_star, diag, ws, mu_p, sd_p);
      gpr.predict_batch(k_star, diag, ws, mu_b, sd_b);
      for (std::size_t q = 0; q < m; ++q) {
        ASSERT_EQ(mu_p[q], mu_b[q]) << "iter " << iter << " mean " << q;
        ASSERT_EQ(sd_p[q], sd_b[q]) << "iter " << iter << " stddev " << q;
      }
      EXPECT_EQ(gpr.panel_rows(), gpr.training_size());
      if (iter + 1 == 8) break;  // final append would never be swept

      // Acquire: drop one candidate column, learn one new point, extend
      // the cross matrix by its kernel row (alive-column gather of the
      // full-pool cross — per-pair entries, so the bits are the rebuild's).
      const std::size_t pick = iter % k_star.cols();
      k_star.remove_column(pick);
      diag.erase(diag.begin() + static_cast<std::ptrdiff_t>(pick));
      gpr.panel_remove_column(pick);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
      ++dropped;

      const Matrix x_new = random_points(1, 2, rng);
      gpr.add_point(x_new.row(0), 0.25 * static_cast<double>(iter));
      const Matrix full_row = gpr.kernel().cross(x_new, pool);  // 1 x 15
      std::vector<double> row(alive.size());
      for (std::size_t q = 0; q < alive.size(); ++q) {
        row[q] = full_row(0, alive[q]);
      }
      k_star.push_row(row);
      ++appended;
    }
  }
  const trace::TraceReport report = collector.report();
  EXPECT_EQ(report.counter("panel.rebuilds"), 1u);
  EXPECT_EQ(report.counter("panel.rows_appended"), appended);
  EXPECT_EQ(report.counter("panel.cols_dropped"), dropped);
}

TEST(PanelGpr, FullRefitInvalidatesAndRebuildsBitwise) {
  trace::set_enabled(true);
  Rng rng(7);
  const Matrix x = random_points(24, 3, rng);
  const auto y = targets(x, rng);
  GprOptions options;
  options.optimize = false;
  GaussianProcessRegressor gpr(make_ard_kernel(3), options);
  gpr.fit(x, y, rng);

  const Matrix pool = random_points(11, 3, rng);
  const Matrix k_star = gpr.kernel().cross(x, pool);
  const std::vector<double> diag = gpr.kernel().diagonal(pool);

  trace::TraceCollector collector;
  const trace::ScopedCollector scope(collector);
  Workspace ws;
  std::vector<double> mu(pool.rows());
  std::vector<double> sd(pool.rows());
  gpr.predict_batch_panel(k_star, diag, ws, mu, sd);
  EXPECT_EQ(collector.report().counter("panel.rebuilds"), 1u);

  // A theta move forces the full posterior rebuild — the panel must not
  // survive it, and the post-move sweep must match the from-scratch path.
  std::vector<double> theta = gpr.kernel().log_params();
  for (double& t : theta) t += 0.05;
  gpr.set_kernel_log_params(theta);
  gpr.fit(x, y, rng);
  EXPECT_EQ(gpr.panel_rows(), 0u);

  const Matrix k_star2 = gpr.kernel().cross(x, pool);
  const std::vector<double> diag2 = gpr.kernel().diagonal(pool);
  std::vector<double> mu_p(pool.rows());
  std::vector<double> sd_p(pool.rows());
  std::vector<double> mu_b(pool.rows());
  std::vector<double> sd_b(pool.rows());
  gpr.predict_batch_panel(k_star2, diag2, ws, mu_p, sd_p);
  gpr.predict_batch(k_star2, diag2, ws, mu_b, sd_b);
  for (std::size_t q = 0; q < pool.rows(); ++q) {
    EXPECT_EQ(mu_p[q], mu_b[q]) << "mean " << q;
    EXPECT_EQ(sd_p[q], sd_b[q]) << "stddev " << q;
  }
  EXPECT_EQ(collector.report().counter("panel.rebuilds"), 2u);
}

TEST(PanelGpr, RepeatSweepWithoutGrowthAppendsNoRows) {
  trace::set_enabled(true);
  Rng rng(11);
  const Matrix x = random_points(16, 2, rng);
  const auto y = targets(x, rng);
  GprOptions options;
  options.optimize = false;
  GaussianProcessRegressor gpr(make_paper_kernel(), options);
  gpr.fit(x, y, rng);

  const Matrix pool = random_points(9, 2, rng);
  const Matrix k_star = gpr.kernel().cross(x, pool);
  const std::vector<double> diag = gpr.kernel().diagonal(pool);

  trace::TraceCollector collector;
  const trace::ScopedCollector scope(collector);
  Workspace ws;
  std::vector<double> mu1(pool.rows());
  std::vector<double> sd1(pool.rows());
  std::vector<double> mu2(pool.rows());
  std::vector<double> sd2(pool.rows());
  gpr.predict_batch_panel(k_star, diag, ws, mu1, sd1);
  gpr.predict_batch_panel(k_star, diag, ws, mu2, sd2);
  for (std::size_t q = 0; q < pool.rows(); ++q) {
    EXPECT_EQ(mu1[q], mu2[q]);
    EXPECT_EQ(sd1[q], sd2[q]);
  }
  const trace::TraceReport report = collector.report();
  EXPECT_EQ(report.counter("panel.rebuilds"), 1u);
  EXPECT_EQ(report.counter("panel.rows_appended"), 0u);
}

// --- Trajectory-level: panel on vs off through the full AL loop -------------

constexpr std::size_t kIterations = 20;

core::AlOptions panel_options(bool panel_on) {
  core::AlOptions options;
  options.n_test = 60;
  options.n_init = 25;
  options.max_iterations = kIterations;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 40;
  options.refit.restarts = 0;
  options.refit.max_opt_iterations = 4;
  options.panel_predict = panel_on;
  options.trace = true;
  return options;
}

core::TrajectoryResult run_trajectory(const core::AlOptions& options) {
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(320, 2024);
  const core::AlSimulator simulator(dataset, options);
  const core::Rgma rgma(simulator.memory_limit_log10());
  Rng partition_rng(11);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);
  Rng rng(2024);
  return simulator.run_with_partition(rgma, partition, rng);
}

core::TrajectoryResult expect_panel_arms_byte_identical(
    const std::function<void(core::AlOptions&)>& customize) {
  core::AlOptions on = panel_options(true);
  core::AlOptions off = panel_options(false);
  customize(on);
  customize(off);
  core::TrajectoryResult panel_result = run_trajectory(on);
  const core::TrajectoryResult baseline = run_trajectory(off);
  EXPECT_EQ(core::trajectory_to_csv(panel_result),
            core::trajectory_to_csv(baseline));
  // The panel-off arm must never touch the panel counters.
  EXPECT_EQ(baseline.trace.counter("panel.rebuilds"), 0u);
  EXPECT_EQ(baseline.trace.counter("panel.rows_appended"), 0u);
  return panel_result;
}

TEST(PanelTrajectory, WarmRefitThetaMovesByteIdentical) {
  // The warm refits (4 L-BFGS iterations) move theta on every pass in
  // this recipe, so every sweep takes the full-rebuild invalidation path;
  // the parity check covers the rebuild arm of the cache.
  const auto result = expect_panel_arms_byte_identical([](core::AlOptions&) {});
  // Two responses (cost + memory) rebuild once per iteration each; the
  // acquisitions tombstone their candidate columns in between (the next
  // rebuild compacts them away).
  EXPECT_GE(result.trace.counter("panel.rebuilds"), 2 * kIterations);
  EXPECT_EQ(result.trace.counter("panel.rows_appended"), 0u);
  EXPECT_GE(result.trace.counter("sim.kstar_tombstone"), kIterations);
}

TEST(PanelTrajectory, ZeroRefitBudgetAppendsRowsByteIdentical) {
  // With a zero optimization budget the warm refits keep theta fixed
  // (zero-budget short-circuit), every refit extends the factor by one
  // row, and the steady-state sweeps must append rows rather than
  // rebuild — the O(M n) path the cache exists for.
  const auto result =
      expect_panel_arms_byte_identical([](core::AlOptions& options) {
        options.refit.max_opt_iterations = 0;
      });
  EXPECT_LE(result.trace.counter("panel.rebuilds"), 4u);
  EXPECT_GE(result.trace.counter("panel.rows_appended"), kIterations);
  EXPECT_GE(result.trace.counter("sim.kstar_tombstone"), kIterations);
}

TEST(PanelTrajectory, CholeskyNonPsdRecoveryByteIdentical) {
  // Probabilistic factorization vetoes drive the jittered-refactor and
  // recovery rungs; each one must invalidate the panel, never corrupt it.
  const auto result =
      expect_panel_arms_byte_identical([](core::AlOptions& options) {
        options.failures.plan =
            faults::FaultPlan::parse("seed=17;cholesky.non_psd:p=0.05,max=4");
      });
  EXPECT_GE(result.trace.counter("panel.rebuilds"), 2u);
}

TEST(PanelTrajectory, AcquireOomDropCensorByteIdentical) {
  const auto result =
      expect_panel_arms_byte_identical([](core::AlOptions& options) {
        options.failures.plan =
            faults::FaultPlan::parse("seed=5;acquire.oom:hits=1|3|5");
        options.failures.policy = core::CensorPolicy::kDropCensored;
      });
  EXPECT_EQ(result.censored_count, 3u);
  // Censored candidates leave the pool without a refit: their columns are
  // tombstoned out of the live panel.
  EXPECT_GE(result.trace.counter("sim.kstar_tombstone"), kIterations);
}

TEST(PanelTrajectory, AcquireOomRetryCensorByteIdentical) {
  expect_panel_arms_byte_identical([](core::AlOptions& options) {
    options.failures.plan =
        faults::FaultPlan::parse("seed=5;acquire.oom:hits=2|4");
    options.failures.policy = core::CensorPolicy::kRetryNextCandidate;
  });
}

TEST(PanelTrajectory, CheckpointResumeByteIdentical) {
  // Mid-trajectory kill + resume with the panel on: the resume rebuilds
  // the posterior (invalidating the panel), and the rebuilt panel must
  // reproduce the uninterrupted run byte for byte.
  const core::AlOptions options = panel_options(true);
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(320, 2024);
  const core::AlSimulator simulator(dataset, options);
  const core::Rgma rgma(simulator.memory_limit_log10());
  Rng partition_rng(11);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);

  Rng rng_full(2024);
  const auto full = simulator.run_with_partition(rgma, partition, rng_full);

  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "panel_resume.json";
  std::filesystem::remove(path);
  core::CheckpointConfig cfg;
  cfg.path = path;
  cfg.stride = 3;
  cfg.halt_after_iterations = 9;
  Rng rng_first(2024);
  const auto first = simulator.run_resumable(rgma, partition, rng_first, cfg);
  EXPECT_EQ(first.stop_reason, core::StopReason::kCheckpointHalt);
  ASSERT_TRUE(std::filesystem::exists(path));

  cfg.resume = true;
  cfg.halt_after_iterations = 0;
  Rng rng_second(2024);
  const auto resumed = simulator.run_resumable(rgma, partition, rng_second, cfg);
  EXPECT_EQ(core::trajectory_to_csv(resumed), core::trajectory_to_csv(full));
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(PanelTrajectory, PanelFlagIsNotFingerprinted) {
  // The panel is derived state: a checkpoint written with the panel ON
  // must resume with the panel OFF (and vice versa) byte-identically —
  // the flag deliberately stays out of the trajectory fingerprint.
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(320, 2024);
  const core::AlOptions on = panel_options(true);
  const core::AlOptions off = panel_options(false);
  const core::AlSimulator sim_on(dataset, on);
  const core::AlSimulator sim_off(dataset, off);
  const core::Rgma rgma(sim_on.memory_limit_log10());
  Rng partition_rng(11);
  const data::Partition partition = data::make_partition(
      dataset.size(), on.n_test, on.n_init, partition_rng);

  Rng rng_full(2024);
  const auto full = sim_on.run_with_partition(rgma, partition, rng_full);

  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "panel_cross_flag.json";
  std::filesystem::remove(path);
  core::CheckpointConfig cfg;
  cfg.path = path;
  cfg.stride = 4;
  cfg.halt_after_iterations = 8;
  Rng rng_first(2024);
  (void)sim_on.run_resumable(rgma, partition, rng_first, cfg);
  ASSERT_TRUE(std::filesystem::exists(path));

  cfg.resume = true;
  cfg.halt_after_iterations = 0;
  Rng rng_second(2024);
  const auto resumed = sim_off.run_resumable(rgma, partition, rng_second, cfg);
  EXPECT_EQ(core::trajectory_to_csv(resumed), core::trajectory_to_csv(full));
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
