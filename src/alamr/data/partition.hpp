#pragma once

// Init/Active/Test partitioning (paper Sec. IV): in each AL experiment the
// n = 600 samples are shuffled; n_test = 200 go to the Test partition, and
// the remaining 400 are split n_init / n_active. Every AL trajectory uses
// a fresh random partition so cross-partition statistics are meaningful.

#include <vector>

#include "alamr/stats/rng.hpp"

namespace alamr::data {

/// Disjoint row-index sets covering {0, ..., n-1}.
struct Partition {
  std::vector<std::size_t> init;
  std::vector<std::size_t> active;
  std::vector<std::size_t> test;

  std::size_t total() const noexcept {
    return init.size() + active.size() + test.size();
  }
};

/// Shuffles {0..n-1} with `rng` and deals the first n_test indices to Test,
/// the next n_init to Init, and the rest to Active.
/// Requires n_test + n_init <= n and n_init >= 1 (the models need at least
/// one training sample before AL starts).
Partition make_partition(std::size_t n, std::size_t n_test, std::size_t n_init,
                         stats::Rng& rng);

}  // namespace alamr::data
