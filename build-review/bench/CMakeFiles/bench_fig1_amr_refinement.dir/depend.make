# Empty dependencies file for bench_fig1_amr_refinement.
# This may be replaced when dependencies are built.
