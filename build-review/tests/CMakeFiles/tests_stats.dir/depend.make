# Empty dependencies file for tests_stats.
# This may be replaced when dependencies are built.
