// A4 — future-work ablation (paper Sec. VI): selecting multiple
// simulations per AL round. Batch selection freezes the model within a
// round, so it is less greedy; in exchange, a round's q simulations can
// run concurrently, dividing the number of scheduling rounds by q.
// Sweeps q in {1, 2, 4, 8} with RandGoodness and reports accuracy, cost,
// and the round count.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace alamr;
  bench::print_header(
      "A4: batch-selection ablation", "Sec. VI future work",
      "larger batches need fewer scheduling rounds at a modest accuracy "
      "penalty (less greedy selection)");

  const data::Dataset dataset = bench::load_dataset();
  const core::AlOptions options = bench::al_options(/*n_init=*/50,
                                                    /*iterations=*/120);
  const core::AlSimulator simulator(dataset, options);

  stats::Rng partition_rng(808);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);

  std::printf("\n%8s %8s %12s %14s %14s\n", "batch q", "rounds", "cum.cost",
              "RMSE(cost)", "RMSE(mem)");
  for (const std::size_t q : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    stats::Rng rng(13);
    const core::TrajectoryResult traj =
        simulator.run_batched(core::RandGoodness(), q, partition, rng);
    const std::size_t rounds = (traj.iterations.size() + q - 1) / q;
    std::printf("%8zu %8zu %12.3f %14.4f %14.4f\n", q, rounds,
                traj.iterations.back().cumulative_cost,
                traj.iterations.back().rmse_cost,
                traj.iterations.back().rmse_mem);
  }
  return 0;
}
