// Online Active Learning: instead of replaying a precomputed dataset, each
// AL selection ACTUALLY runs an AMR simulation (solver + machine model)
// and pays its cost — the deployment mode the paper's offline simulator is
// a stand-in for.
//
// To keep the demo fast the candidate grid is restricted to a moderate
// regime (mx <= 16, maxlevel <= 4); the cost-aware strategy keeps the
// total simulated bill low on its own.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string_view>

#include "alamr/amr/campaign.hpp"
#include "alamr/core/online.hpp"
#include "example_utils.hpp"

int main(int argc, char** argv) {
  using namespace alamr;
  const std::optional<std::string> trace_path =
      examples::trace_flag(argc, argv);

  // Serving-mode flags (DESIGN.md §14): durable checkpointing with
  // kill/resume (`--checkpoint <path> [--stride N] [--resume]`,
  // exercised by scripts/crash_resume.sh), fault injection
  // (`--fault-plan <spec>`), and the resilience posture
  // (`--no-resilience` / `--resilience=on|off`).
  core::CheckpointConfig checkpoint;
  checkpoint.stride = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--checkpoint" && i + 1 < argc) {
      checkpoint.path = argv[i + 1];
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      checkpoint.path =
          std::string(arg.substr(std::string_view("--checkpoint=").size()));
    } else if (arg == "--stride" && i + 1 < argc) {
      checkpoint.stride = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (arg == "--halt-after" && i + 1 < argc) {
      checkpoint.halt_after_iterations = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (arg == "--resume") {
      checkpoint.resume = true;
    }
  }
  if (!checkpoint.path.empty()) {
    std::printf("# checkpointing to %s (stride %zu)%s\n",
                checkpoint.path.string().c_str(), checkpoint.stride,
                checkpoint.resume ? " (resume)" : "");
  }

  amr::CampaignOptions grid_options;
  grid_options.mx_values = {8, 16};
  grid_options.level_values = {2, 3, 4};
  const amr::Campaign campaign(grid_options);
  const auto grid = campaign.full_grid();

  linalg::Matrix candidates(grid.size(), 5);
  for (std::size_t g = 0; g < grid.size(); ++g) {
    candidates(g, 0) = grid[g].p;
    candidates(g, 1) = grid[g].mx;
    candidates(g, 2) = grid[g].max_level;
    candidates(g, 3) = grid[g].r0;
    candidates(g, 4) = grid[g].rhoin;
  }
  std::printf("Candidate grid: %zu configurations (mx<=16, maxlevel<=4)\n",
              grid.size());

  // The oracle: run the AMR solver (cached per distinct physics) and price
  // the job on the simulated machine.
  std::map<std::tuple<int, int, double, double>,
           std::shared_ptr<amr::SolverStats>>
      physics_cache;
  std::size_t oracle_calls = 0;
  const core::ExperimentOracle oracle =
      [&](std::span<const double> features) {
        amr::Config config;
        config.p = static_cast<int>(features[0]);
        config.mx = static_cast<int>(features[1]);
        config.max_level = static_cast<int>(features[2]);
        config.r0 = features[3];
        config.rhoin = features[4];
        auto& slot = physics_cache[{config.mx, config.max_level, config.r0,
                                    config.rhoin}];
        if (!slot) {
          amr::FvSolver solver(campaign.make_problem(config));
          slot = std::make_shared<amr::SolverStats>(solver.run());
        }
        // Machine noise is keyed by the configuration, not drawn from a
        // shared stream: a resumed process must reproduce the same
        // measurement for a row regardless of how many experiments the
        // killed process had already consumed. Each row is measured at
        // most once, so per-row streams lose no noise independence.
        std::uint64_t key = 0x9e3779b97f4a7c15ull;
        for (const double f : features) {
          std::uint64_t bits;
          std::memcpy(&bits, &f, sizeof bits);
          key = (key ^ bits) * 0x2545f4914f6cdd1dull;
        }
        stats::Rng job_rng(key);
        const amr::JobResult job =
            amr::simulate_job(*slot, config.p, grid_options.machine, job_rng);
        ++oracle_calls;
        return std::pair{job.cost_node_hours, job.maxrss_mb};
      };

  core::OnlineAlOptions options;
  options.n_init = 3;
  options.iterations = 30;
  options.memory_limit_log10 = std::log10(4.0);  // 4 MB per-process budget
  if (const std::optional<core::faults::FaultPlan> plan =
          core::faults::parse_fault_flag(argc, argv)) {
    options.plan = *plan;
    std::printf("# fault plan:\n%s", core::faults::describe(*plan).c_str());
  }
  if (core::resilience::parse_resilience_flag(argc, argv,
                                              options.resilience)) {
    std::printf("# %s\n",
                core::resilience::describe(options.resilience).c_str());
  }

  core::OnlineAlDriver driver(candidates, oracle, options);
  const core::Rgma strategy(options.memory_limit_log10);
  stats::Rng rng(7);

  const auto t0 = std::chrono::steady_clock::now();
  const core::OnlineResult result = driver.run(
      strategy, rng, checkpoint.path.empty() ? nullptr : &checkpoint);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (result.halted_at_checkpoint) {
    std::printf("# halted at checkpoint after %zu new experiments; rerun "
                "with --resume to continue\n",
                checkpoint.halt_after_iterations);
  }

  examples::print_rule();
  std::printf("%5s %6s %4s %5s %7s %7s | %12s %12s %12s\n", "step", "p", "mx",
              "level", "r0", "rhoin", "cost[nh]", "mem[MB]", "cum.cost");
  examples::print_rule();
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const auto& rec = result.records[i];
    const auto row = candidates.row(rec.grid_row);
    std::printf("%4zu%c %6.0f %4.0f %5.0f %7.3f %7.2f | %12.4f %12.3f %12.3f\n",
                i + 1, rec.initial_phase ? '*' : ' ', row[0], row[1], row[2],
                row[3], row[4], rec.cost, rec.memory, rec.cumulative_cost);
  }
  examples::print_rule();
  std::printf(
      "Ran %zu real (simulated-machine) experiments in %.1f s wall;\n"
      "simulated bill: %.3f node-hours, regret on memory violations: %.4f nh.\n"
      "(* = initial-phase run before AL decisions started)\n",
      oracle_calls, elapsed, result.records.back().cumulative_cost,
      result.records.back().cumulative_regret);

  // The trained models are ready for downstream queries.
  const auto pred = result.cost_model->predict(
      data::FeatureScaler::fit(candidates).transform(candidates));
  std::size_t cheapest = 0;
  for (std::size_t g = 1; g < grid.size(); ++g) {
    if (pred.mean[g] < pred.mean[cheapest]) cheapest = g;
  }
  std::printf("Model's cheapest predicted configuration: p=%d mx=%d level=%d "
              "(predicted %.4f nh)\n",
              grid[cheapest].p, grid[cheapest].mx, grid[cheapest].max_level,
              std::pow(10.0, pred.mean[cheapest]));
  examples::finish_trace(trace_path);
  return 0;
}
