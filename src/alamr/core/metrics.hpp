#pragma once

// Evaluation metrics of paper Sec. V-B: test RMSE in the original
// (non-log) response space (Eq. 10), optionally weighted (Eq. 12);
// cumulative cost; and cumulative regret against a memory limit (Eq. 11).

#include <span>
#include <vector>

namespace alamr::core {

/// RMSE between predictions and actual values (Eq. 10). Both in the
/// original response units (callers exponentiate log-space predictions
/// first, per Sec. IV-A).
double rmse(std::span<const double> predicted, std::span<const double> actual);

/// Weighted RMSE (Eq. 12): sqrt(e^T rho e / n) with diagonal weights rho.
/// `weights` must be non-negative and the same length as the residuals;
/// they are normalized to sum to n so uniform weights reproduce rmse().
double weighted_rmse(std::span<const double> predicted,
                     std::span<const double> actual,
                     std::span<const double> weights);

/// Individual regret (Eq. 11): the full cost is wasted iff the job's
/// actual memory use meets or exceeds the limit (it would have crashed).
double individual_regret(double cost, double memory, double memory_limit);

/// Cumulative sums of a per-iteration series (for CC and CR curves).
std::vector<double> cumulative(std::span<const double> values);

}  // namespace alamr::core
