#include "alamr/core/export.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace alamr::core {

namespace {

void write_file(const std::string& content, const std::filesystem::path& path,
                const char* who) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error(std::string(who) + ": cannot open " + path.string());
  }
  out << content;
  if (!out) {
    throw std::runtime_error(std::string(who) + ": write failed " + path.string());
  }
}

}  // namespace

std::string trajectory_to_csv(const TrajectoryResult& trajectory) {
  std::ostringstream os;
  os.precision(17);
  // The censor column is appended only when at least one record was
  // censored, so trajectories under the inert failure model serialize to
  // exactly the historical bytes (the golden files depend on that).
  const bool any_censored = std::any_of(
      trajectory.iterations.begin(), trajectory.iterations.end(),
      [](const IterationRecord& r) { return r.censor != CensorKind::kNone; });
  os << "iteration,dataset_row,actual_cost,actual_memory,"
        "predicted_cost_log10,predicted_cost_sigma,predicted_mem_log10,"
        "predicted_mem_sigma,rmse_cost,rmse_mem,rmse_cost_weighted,"
        "cumulative_cost,cumulative_regret";
  if (any_censored) os << ",censored,censor_kind";
  os << '\n';
  for (const IterationRecord& rec : trajectory.iterations) {
    os << rec.iteration << ',' << rec.dataset_row << ',' << rec.actual_cost
       << ',' << rec.actual_memory << ',' << rec.predicted_cost_log10 << ','
       << rec.predicted_cost_sigma << ',' << rec.predicted_mem_log10 << ','
       << rec.predicted_mem_sigma << ',' << rec.rmse_cost << ','
       << rec.rmse_mem << ',' << rec.rmse_cost_weighted << ','
       << rec.cumulative_cost << ',' << rec.cumulative_regret;
    if (any_censored) {
      os << ',' << (rec.censor != CensorKind::kNone ? 1 : 0) << ','
         << to_string(rec.censor);
    }
    os << '\n';
  }
  return os.str();
}

void write_trajectory_csv(const TrajectoryResult& trajectory,
                          const std::filesystem::path& path) {
  write_file(trajectory_to_csv(trajectory), path, "write_trajectory_csv");
}

std::string curve_to_csv(std::span<const CurvePoint> curve) {
  std::ostringstream os;
  os.precision(17);
  os << "iteration,mean,lo,hi,count\n";
  for (const CurvePoint& point : curve) {
    os << point.iteration << ',' << point.mean << ',' << point.lo << ','
       << point.hi << ',' << point.count << '\n';
  }
  return os.str();
}

void write_curve_csv(std::span<const CurvePoint> curve,
                     const std::filesystem::path& path) {
  write_file(curve_to_csv(curve), path, "write_curve_csv");
}

}  // namespace alamr::core
