#!/usr/bin/env bash
# Records the PR-3 micro-benchmark results into BENCH_PR3.json.
#
# Each benchmark in the set is registered twice: /0 replays the seed
# (pre-PR) recipe through the public reference APIs, /1 runs the
# optimized path.  Both arms live in the same binary so they share the
# compiler, flags, and process state.  We take the median over several
# repetitions because this box is a 1-vCPU VM with 10-30% run-to-run
# drift; medians over >= 5 repetitions are stable to a few percent.
#
# Usage: scripts/bench.sh [build-dir]     (default: build)

set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
repetitions="${ALAMR_BENCH_REPS:-7}"

if [[ ! -x "$build_dir/bench/bench_micro_perf" ]]; then
  cmake -B "$build_dir" -S . > /dev/null
  cmake --build "$build_dir" -j "$(nproc)" --target bench_micro_perf > /dev/null
fi

raw=$(mktemp /tmp/bench_pr3.XXXXXX.json)
trap 'rm -f "$raw"' EXIT

"$build_dir/bench/bench_micro_perf" \
  --benchmark_filter='BM_(KernelDistanceCache|BlockedCholesky|CholeskyInverse|RefitObjective|RefitObjectiveValue|IncrementalPredict)/' \
  --benchmark_repetitions="$repetitions" \
  --benchmark_report_aggregates_only=true \
  --benchmark_min_time=0.3 \
  --benchmark_out="$raw" --benchmark_out_format=json

python3 - "$raw" "$repetitions" <<'EOF'
import json, sys

raw_path, reps = sys.argv[1], int(sys.argv[2])
with open(raw_path) as f:
    report = json.load(f)

# Collect medians, keyed by "BM_Name/size" with the trailing /0 (seed
# recipe) or /1 (optimized) arm split off.
arms = {}
for b in report["benchmarks"]:
    name = b["name"]
    if not name.endswith("_median"):
        continue
    base = name[: -len("_median")]
    family, size, arm = base.rsplit("/", 2)
    arms.setdefault(f"{family}/{size}", {})[arm] = b["real_time"]

out = {
    "generated_by": "scripts/bench.sh",
    "repetitions": reps,
    "statistic": "median real_time, ns/op",
    "context": {
        "host": report["context"].get("host_name", ""),
        "num_cpus": report["context"].get("num_cpus"),
        "mhz_per_cpu": report["context"].get("mhz_per_cpu"),
    },
    "benchmarks": {},
}
for key in sorted(arms):
    pair = arms[key]
    if "0" not in pair or "1" not in pair:
        continue
    base_ns, opt_ns = pair["0"], pair["1"]
    out["benchmarks"][key] = {
        "seed_recipe_ns": round(base_ns, 1),
        "optimized_ns": round(opt_ns, 1),
        "speedup": round(base_ns / opt_ns, 2),
    }

with open("BENCH_PR3.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

width = max(len(k) for k in out["benchmarks"])
print(f"\n{'benchmark':{width}}  {'seed ns/op':>12}  {'opt ns/op':>12}  speedup")
for key, row in out["benchmarks"].items():
    print(f"{key:{width}}  {row['seed_recipe_ns']:>12.0f}  "
          f"{row['optimized_ns']:>12.0f}  {row['speedup']:>6.2f}x")
print("\nwrote BENCH_PR3.json")
EOF
