
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_amr_refinement.cpp" "bench/CMakeFiles/bench_fig1_amr_refinement.dir/bench_fig1_amr_refinement.cpp.o" "gcc" "bench/CMakeFiles/bench_fig1_amr_refinement.dir/bench_fig1_amr_refinement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/alamr_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/amr/CMakeFiles/alamr_amr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gp/CMakeFiles/alamr_gp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/opt/CMakeFiles/alamr_opt.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/alamr_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/alamr_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/alamr_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
