// Tests for the L-BFGS minimizer that drives hyperparameter fitting.

#include "alamr/opt/lbfgs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::opt;
using alamr::stats::Rng;

// Convex quadratic f(x) = sum c_i (x_i - t_i)^2.
Objective quadratic(std::vector<double> scale, std::vector<double> target) {
  return [scale = std::move(scale), target = std::move(target)](
             std::span<const double> x, std::span<double> grad) {
    double value = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - target[i];
      value += scale[i] * d * d;
      if (!grad.empty()) grad[i] = 2.0 * scale[i] * d;
    }
    return value;
  };
}

Objective rosenbrock() {
  return [](std::span<const double> x, std::span<double> grad) {
    const double a = 1.0;
    const double b = 100.0;
    const double f = (a - x[0]) * (a - x[0]) +
                     b * (x[1] - x[0] * x[0]) * (x[1] - x[0] * x[0]);
    if (!grad.empty()) {
      grad[0] = -2.0 * (a - x[0]) - 4.0 * b * x[0] * (x[1] - x[0] * x[0]);
      grad[1] = 2.0 * b * (x[1] - x[0] * x[0]);
    }
    return f;
  };
}

TEST(Lbfgs, MinimizesQuadratic) {
  const auto f = quadratic({1.0, 3.0, 0.5}, {2.0, -1.0, 4.0});
  const std::vector<double> x0{0.0, 0.0, 0.0};
  const OptimizeResult result = lbfgs_minimize(f, x0);
  EXPECT_TRUE(result.converged());
  EXPECT_NEAR(result.x[0], 2.0, 1e-5);
  EXPECT_NEAR(result.x[1], -1.0, 1e-5);
  EXPECT_NEAR(result.x[2], 4.0, 1e-5);
  EXPECT_NEAR(result.value, 0.0, 1e-9);
}

TEST(Lbfgs, MinimizesRosenbrock) {
  LbfgsOptions options;
  options.max_iterations = 500;
  const OptimizeResult result =
      lbfgs_minimize(rosenbrock(), std::vector<double>{-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-4);
  EXPECT_NEAR(result.x[1], 1.0, 1e-4);
}

TEST(Lbfgs, RespectsBoxBounds) {
  // Unconstrained minimum at (2, -1) but box is [0,1] x [0,1].
  const auto f = quadratic({1.0, 1.0}, {2.0, -1.0});
  Bounds bounds;
  bounds.lower = {0.0, 0.0};
  bounds.upper = {1.0, 1.0};
  const OptimizeResult result =
      lbfgs_minimize(f, std::vector<double>{0.5, 0.5}, {}, bounds);
  EXPECT_NEAR(result.x[0], 1.0, 1e-6);
  EXPECT_NEAR(result.x[1], 0.0, 1e-6);
}

TEST(Lbfgs, StartOutsideBoxGetsProjected) {
  const auto f = quadratic({1.0}, {0.5});
  Bounds bounds;
  bounds.lower = {0.0};
  bounds.upper = {1.0};
  const OptimizeResult result =
      lbfgs_minimize(f, std::vector<double>{50.0}, {}, bounds);
  EXPECT_NEAR(result.x[0], 0.5, 1e-6);
}

TEST(Lbfgs, ImmediateConvergenceAtOptimum) {
  const auto f = quadratic({1.0, 1.0}, {3.0, 3.0});
  const OptimizeResult result = lbfgs_minimize(f, std::vector<double>{3.0, 3.0});
  EXPECT_TRUE(result.converged());
  EXPECT_EQ(result.iterations, 0u);
}

TEST(Lbfgs, HonorsIterationBudget) {
  LbfgsOptions options;
  options.max_iterations = 2;
  options.gradient_tolerance = 0.0;
  options.relative_f_tolerance = 0.0;
  const OptimizeResult result =
      lbfgs_minimize(rosenbrock(), std::vector<double>{-1.2, 1.0}, options);
  EXPECT_EQ(result.reason, StopReason::kMaxIterations);
  EXPECT_LE(result.iterations, 2u);
}

TEST(Lbfgs, EmptyStartThrows) {
  const auto f = quadratic({}, {});
  EXPECT_THROW(lbfgs_minimize(f, std::vector<double>{}), std::invalid_argument);
}

TEST(Lbfgs, StopReasonStringsAreHuman) {
  EXPECT_FALSE(to_string(StopReason::kGradientTolerance).empty());
  EXPECT_FALSE(to_string(StopReason::kLineSearchFailed).empty());
}

TEST(FiniteDifference, MatchesAnalyticGradient) {
  const auto f = quadratic({2.0, 1.0}, {1.0, -2.0});
  const std::vector<double> x{0.3, 0.7};
  const std::vector<double> fd = finite_difference_gradient(f, x);
  std::vector<double> analytic(2);
  f(x, analytic);
  EXPECT_NEAR(fd[0], analytic[0], 1e-6);
  EXPECT_NEAR(fd[1], analytic[1], 1e-6);
}

TEST(BoundsTest, ValidationCatchesMistakes) {
  Bounds bounds;
  bounds.lower = {0.0, 0.0};
  EXPECT_THROW(bounds.validate(3), std::invalid_argument);
  bounds.upper = {-1.0, 1.0};
  EXPECT_THROW(bounds.validate(2), std::invalid_argument);
}

// Property: from random starting points, L-BFGS lands on the quadratic's
// known minimizer.
class LbfgsRandomStarts : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LbfgsRandomStarts, QuadraticAlwaysSolved) {
  Rng rng(GetParam());
  const std::size_t dim = 1 + rng.uniform_index(8);
  std::vector<double> scale(dim);
  std::vector<double> target(dim);
  std::vector<double> x0(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    scale[i] = rng.uniform(0.1, 5.0);
    target[i] = rng.uniform(-3.0, 3.0);
    x0[i] = rng.uniform(-10.0, 10.0);
  }
  const OptimizeResult result = lbfgs_minimize(quadratic(scale, target), x0);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(result.x[i], target[i], 1e-4) << "dim " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LbfgsRandomStarts,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 10ULL, 77ULL,
                                           555ULL));

}  // namespace
