# Empty dependencies file for tests_data.
# This may be replaced when dependencies are built.
