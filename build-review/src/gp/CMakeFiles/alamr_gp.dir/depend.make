# Empty dependencies file for alamr_gp.
# This may be replaced when dependencies are built.
