// Tests for the dataset-generating campaign (small grids for speed).

#include "alamr/amr/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace {

using namespace alamr::amr;

CampaignOptions tiny_options() {
  CampaignOptions options;
  options.p_values = {4, 8};
  options.mx_values = {8};
  options.level_values = {1, 2};
  options.r0_values = {0.3, 0.45};
  options.rhoin_values = {0.1, 0.3};
  options.unique_configs = 10;
  options.dataset_size = 14;
  options.base_problem.final_time = 0.008;
  options.maxrss_bug_threshold_seconds = 5.0;
  options.maxrss_bug_probability = 0.3;
  options.seed = 77;
  return options;
}

TEST(Campaign, FullGridSize) {
  const Campaign campaign(tiny_options());
  EXPECT_EQ(campaign.full_grid().size(), 2u * 1u * 2u * 2u * 2u);
}

TEST(Campaign, DefaultGridMatchesPaper) {
  const Campaign campaign{CampaignOptions{}};
  // 4 x 4 x 4 x 5 x 6 = 1920 combinations (paper Sec. IV-A).
  EXPECT_EQ(campaign.full_grid().size(), 1920u);
}

TEST(Campaign, WorkEstimateGrowsWithMxAndLevel) {
  const Config cheap{4, 8, 3, 0.3, 0.1};
  const Config pricier_mx{4, 16, 3, 0.3, 0.1};
  const Config pricier_lvl{4, 8, 4, 0.3, 0.1};
  EXPECT_GT(Campaign::work_estimate(pricier_mx), Campaign::work_estimate(cheap));
  EXPECT_GT(Campaign::work_estimate(pricier_lvl), Campaign::work_estimate(cheap));
}

TEST(Campaign, MakeProblemAppliesConfig) {
  const Campaign campaign(tiny_options());
  const Config config{8, 8, 2, 0.45, 0.3};
  const ShockBubbleProblem problem = campaign.make_problem(config);
  EXPECT_EQ(problem.mx, 8);
  EXPECT_EQ(problem.max_level, 2);
  EXPECT_DOUBLE_EQ(problem.r0, 0.45);
  EXPECT_DOUBLE_EQ(problem.rhoin, 0.3);
}

TEST(Campaign, RejectsBadOptions) {
  CampaignOptions options = tiny_options();
  options.unique_configs = 100;  // exceeds dataset_size after adjustment
  options.dataset_size = 50;
  EXPECT_THROW(Campaign{options}, std::invalid_argument);
  CampaignOptions empty = tiny_options();
  empty.p_values.clear();
  EXPECT_THROW(Campaign{empty}, std::invalid_argument);
}

TEST(Campaign, SecondOrderSubstrateProducesComparableDataset) {
  // The campaign must run end-to-end with the MUSCL-Hancock + HLLC
  // substrate; responses stay positive and in the same order of magnitude
  // as the first-order default (the AL pipeline is scheme-agnostic).
  CampaignOptions options = tiny_options();
  options.base_problem.order = SpatialOrder::kSecondOrder;
  options.base_problem.riemann = RiemannSolver::kHllc;
  options.unique_configs = 6;
  options.dataset_size = 8;
  options.seed = 99;
  const auto records = Campaign(options).run();
  const auto dataset = Campaign::to_dataset(records);
  ASSERT_GE(dataset.size(), 6u);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_GT(dataset.cost[i], 0.0);
    EXPECT_LT(dataset.cost[i], 100.0);
    EXPECT_GT(dataset.memory[i], 0.0);
  }
}

class CampaignRun : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // One shared (slow-ish) campaign run for all assertions below.
    records_ = new std::vector<JobRecord>(Campaign(tiny_options()).run());
  }
  static void TearDownTestSuite() {
    delete records_;
    records_ = nullptr;
  }
  static std::vector<JobRecord>* records_;
};

std::vector<JobRecord>* CampaignRun::records_ = nullptr;

TEST_F(CampaignRun, ProducesRequestedUsableRows) {
  std::size_t usable = 0;
  for (const JobRecord& r : *records_) {
    if (!r.maxrss_missing) ++usable;
  }
  EXPECT_GE(usable, tiny_options().dataset_size);
}

TEST_F(CampaignRun, UniqueConfigTargetMet) {
  std::set<std::tuple<int, int, int, double, double>> unique;
  for (const JobRecord& r : *records_) {
    if (!r.maxrss_missing && !r.replicate) {
      unique.insert({r.config.p, r.config.mx, r.config.max_level, r.config.r0,
                     r.config.rhoin});
    }
  }
  // The tiny 16-combination grid can exhaust before the target when the
  // MaxRSS bug hits many short jobs (the real 1920-combination grid always
  // meets it); the campaign must get as close as the pool allows and never
  // overshoot.
  EXPECT_LE(unique.size(), tiny_options().unique_configs);
  EXPECT_GE(unique.size(), tiny_options().unique_configs / 2);
}

TEST_F(CampaignRun, BugOnlyAffectsShortJobs) {
  for (const JobRecord& r : *records_) {
    if (r.maxrss_missing) {
      EXPECT_LT(r.result.wallclock_seconds,
                tiny_options().maxrss_bug_threshold_seconds);
      EXPECT_DOUBLE_EQ(r.reported_maxrss_mb, 0.0);
    } else {
      EXPECT_GT(r.reported_maxrss_mb, 0.0);
    }
  }
}

TEST_F(CampaignRun, ReplicatesReuseSampledConfigs) {
  std::set<std::tuple<int, int, int, double, double>> unique;
  for (const JobRecord& r : *records_) {
    if (!r.replicate) {
      unique.insert({r.config.p, r.config.mx, r.config.max_level, r.config.r0,
                     r.config.rhoin});
    }
  }
  for (const JobRecord& r : *records_) {
    if (r.replicate) {
      EXPECT_TRUE(unique.contains({r.config.p, r.config.mx, r.config.max_level,
                                   r.config.r0, r.config.rhoin}));
    }
  }
}

TEST_F(CampaignRun, ToDatasetFiltersAndLimits) {
  const auto dataset = Campaign::to_dataset(*records_);
  std::size_t usable = 0;
  for (const JobRecord& r : *records_) {
    if (!r.maxrss_missing) ++usable;
  }
  EXPECT_EQ(dataset.size(), usable);
  EXPECT_EQ(dataset.dim(), 5u);
  EXPECT_EQ(dataset.feature_names[2], "maxlevel");
  for (const double m : dataset.memory) EXPECT_GT(m, 0.0);

  const auto limited = Campaign::to_dataset(*records_, 5);
  EXPECT_EQ(limited.size(), 5u);
}

TEST_F(CampaignRun, DeterministicForFixedSeed) {
  const auto again = Campaign(tiny_options()).run();
  ASSERT_EQ(again.size(), records_->size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].config, (*records_)[i].config);
    EXPECT_DOUBLE_EQ(again[i].result.wallclock_seconds,
                     (*records_)[i].result.wallclock_seconds);
  }
}

TEST_F(CampaignRun, ReplicatesShowMeasurementVariability) {
  // Find two jobs with identical configs; their wallclocks must differ
  // (multiplicative noise) but not wildly.
  for (std::size_t i = 0; i < records_->size(); ++i) {
    for (std::size_t j = i + 1; j < records_->size(); ++j) {
      if ((*records_)[i].config == (*records_)[j].config) {
        const double a = (*records_)[i].result.wallclock_seconds;
        const double b = (*records_)[j].result.wallclock_seconds;
        EXPECT_NE(a, b);
        EXPECT_LT(std::abs(a - b) / std::max(a, b), 0.6);
        return;
      }
    }
  }
  GTEST_SKIP() << "no replicate pair in this tiny campaign";
}

}  // namespace
