# Empty compiler generated dependencies file for bench_ablate_kernels.
# This may be replaced when dependencies are built.
