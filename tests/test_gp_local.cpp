// Tests for the local GPR ensemble (paper Sec. VI future work).

#include "alamr/gp/local.hpp"

#include <gtest/gtest.h>

#include <climits>
#include <cmath>

#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::gp;
using alamr::linalg::Matrix;
using alamr::stats::Rng;

/// Piecewise response: two regions (x0 < 0.5 and x0 >= 0.5) with very
/// different characters — local models should win here.
double piecewise(double x0, double x1) {
  return x0 < 0.5 ? std::sin(20.0 * x1) : 5.0 + 0.1 * x1;
}

int region_of(std::span<const double> row) { return row[0] < 0.5 ? 0 : 1; }

Matrix sample_inputs(std::size_t n, Rng& rng) {
  Matrix x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);
    x(i, 1) = rng.uniform(0.0, 1.0);
  }
  return x;
}

TEST(LocalGpr, FitsOneModelPerRegion) {
  Rng rng(1);
  const Matrix x = sample_inputs(60, rng);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) y[i] = piecewise(x(i, 0), x(i, 1));

  LocalGprEnsemble ensemble(make_paper_kernel(), &region_of);
  ensemble.fit(x, y, rng);
  EXPECT_TRUE(ensemble.fitted());
  EXPECT_EQ(ensemble.region_count(), 2u);
  EXPECT_EQ(ensemble.region_labels(), (std::vector<int>{0, 1}));
  EXPECT_NO_THROW(ensemble.region_model(0));
  EXPECT_THROW(ensemble.region_model(7), std::out_of_range);
}

TEST(LocalGpr, BeatsGlobalModelOnPiecewiseResponse) {
  Rng rng(2);
  const Matrix x_train = sample_inputs(80, rng);
  std::vector<double> y_train(x_train.rows());
  for (std::size_t i = 0; i < x_train.rows(); ++i) {
    y_train[i] = piecewise(x_train(i, 0), x_train(i, 1));
  }
  const Matrix x_test = sample_inputs(60, rng);

  GprOptions options;
  options.restarts = 1;
  LocalGprEnsemble local(make_paper_kernel(), &region_of, options);
  Rng r1(3);
  local.fit(x_train, y_train, r1);

  GaussianProcessRegressor global(make_paper_kernel(), options);
  Rng r2(3);
  global.fit(x_train, y_train, r2);

  double err_local = 0.0;
  double err_global = 0.0;
  const Prediction pl = local.predict(x_test);
  const Prediction pg = global.predict(x_test);
  for (std::size_t i = 0; i < x_test.rows(); ++i) {
    const double truth = piecewise(x_test(i, 0), x_test(i, 1));
    err_local += (pl.mean[i] - truth) * (pl.mean[i] - truth);
    err_global += (pg.mean[i] - truth) * (pg.mean[i] - truth);
  }
  EXPECT_LT(err_local, err_global);
}

TEST(LocalGpr, SmallRegionsFallBackToGlobal) {
  Rng rng(4);
  Matrix x = sample_inputs(30, rng);
  // Push all but two samples into region 0.
  for (std::size_t i = 0; i < x.rows() - 2; ++i) x(i, 0) = 0.2;
  for (std::size_t i = x.rows() - 2; i < x.rows(); ++i) x(i, 0) = 0.8;
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) y[i] = piecewise(x(i, 0), x(i, 1));

  LocalGprEnsemble ensemble(make_paper_kernel(), &region_of);
  ensemble.fit(x, y, rng, /*min_region_size=*/5);
  EXPECT_EQ(ensemble.region_count(), 1u);  // region 1 too small
  // Predictions in the modelless region still work (global fallback).
  Matrix q(1, 2);
  q(0, 0) = 0.9;
  q(0, 1) = 0.5;
  const Prediction pred = ensemble.predict(q);
  EXPECT_TRUE(std::isfinite(pred.mean[0]));
  EXPECT_GT(pred.stddev[0], 0.0);
}

TEST(LocalGpr, ValidatesArguments) {
  EXPECT_THROW(LocalGprEnsemble(nullptr, &region_of), std::invalid_argument);
  EXPECT_THROW(LocalGprEnsemble(make_paper_kernel(), nullptr),
               std::invalid_argument);
  LocalGprEnsemble ensemble(make_paper_kernel(), &region_of);
  Matrix q(1, 2);
  EXPECT_THROW(ensemble.predict(q), std::logic_error);
  Rng rng(5);
  const Matrix empty(0, 2);
  EXPECT_THROW(ensemble.fit(empty, {}, rng), std::invalid_argument);
}

TEST(LocalGpr, IntMinLabelRoutesToItsOwnModelNotTheFallback) {
  // Regression: INT_MIN was the internal "no model" sentinel, so a
  // labeler emitting INT_MIN had its region's queries mis-routed to the
  // global fallback even when the region owned a fitted model.
  const auto labeler = [](std::span<const double> row) {
    return row[0] < 0.5 ? INT_MIN : 1;
  };
  Rng rng(7);
  const Matrix x = sample_inputs(60, rng);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) y[i] = piecewise(x(i, 0), x(i, 1));

  LocalGprEnsemble ensemble(make_paper_kernel(), labeler);
  ensemble.fit(x, y, rng);
  EXPECT_EQ(ensemble.region_labels(), (std::vector<int>{INT_MIN, 1}));

  Matrix q(1, 2);
  q(0, 0) = 0.1;
  q(0, 1) = 0.5;
  const Prediction via_ensemble = ensemble.predict(q);
  const Prediction via_region = ensemble.region_model(INT_MIN).predict(q);
  EXPECT_EQ(via_ensemble.mean[0], via_region.mean[0]);
  EXPECT_EQ(via_ensemble.stddev[0], via_region.stddev[0]);
}

TEST(LocalGpr, EmptyRegionQueryFallsBackInsteadOfIndexingAnEmptyExpert) {
  // Regression: a query labeled into a region that received ZERO training
  // samples must answer through the fallback, not index a nonexistent
  // expert.
  const auto labeler = [](std::span<const double> row) {
    if (row[0] > 2.0) return 99;  // never seen in training
    return row[0] < 0.5 ? 0 : 1;
  };
  Rng rng(8);
  const Matrix x = sample_inputs(50, rng);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) y[i] = piecewise(x(i, 0), x(i, 1));

  LocalGprEnsemble ensemble(make_paper_kernel(), labeler);
  ensemble.fit(x, y, rng);

  Matrix q(1, 2);
  q(0, 0) = 3.0;  // labels as 99: an empty region
  q(0, 1) = 0.5;
  const Prediction pred = ensemble.predict(q);
  EXPECT_TRUE(std::isfinite(pred.mean[0]));
  EXPECT_GT(pred.stddev[0], 0.0);
  const std::vector<double> mu = ensemble.predict_mean(q);
  EXPECT_EQ(mu[0], pred.mean[0]);
}

TEST(LocalGpr, PriorFallbackAnswersWithoutAGlobalModel) {
  // Fallback::kPrior: modelless regions answer with the running target
  // mean and the prototype kernel's prior stddev — no O(n^3) global fit.
  Rng rng(9);
  Matrix x = sample_inputs(30, rng);
  for (std::size_t i = 0; i < x.rows() - 2; ++i) x(i, 0) = 0.2;
  for (std::size_t i = x.rows() - 2; i < x.rows(); ++i) x(i, 0) = 0.8;
  std::vector<double> y(x.rows());
  double y_sum = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    y[i] = piecewise(x(i, 0), x(i, 1));
    y_sum += y[i];
  }

  LocalGprEnsemble ensemble(make_paper_kernel(), &region_of);
  LocalGprEnsemble::FitSpec spec;
  spec.min_region_size = 5;
  spec.fallback = LocalGprEnsemble::Fallback::kPrior;
  ensemble.fit(x, y, rng, spec);
  EXPECT_EQ(ensemble.region_count(), 1u);  // region 1 too small

  Matrix q(1, 2);
  q(0, 0) = 0.9;  // region 1: no model of its own
  q(0, 1) = 0.5;
  const Prediction pred = ensemble.predict(q);
  EXPECT_DOUBLE_EQ(pred.mean[0], y_sum / static_cast<double>(x.rows()));
  EXPECT_DOUBLE_EQ(pred.mean[0], ensemble.prior_mean());
  EXPECT_GT(pred.stddev[0], 0.0);
  EXPECT_TRUE(std::isfinite(ensemble.lml()));
}

TEST(LocalGpr, AddPointGrowsARegionIntoItsOwnModel) {
  Rng rng(10);
  Matrix x = sample_inputs(30, rng);
  for (std::size_t i = 0; i < x.rows(); ++i) x(i, 0) = 0.2;  // all region 0
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) y[i] = piecewise(x(i, 0), x(i, 1));

  LocalGprEnsemble ensemble(make_paper_kernel(), &region_of);
  LocalGprEnsemble::FitSpec spec;
  spec.min_region_size = 5;
  spec.fallback = LocalGprEnsemble::Fallback::kPrior;
  ensemble.fit(x, y, rng, spec);
  EXPECT_EQ(ensemble.region_count(), 1u);

  // Feed region 1 one point at a time; it gets a model exactly when it
  // reaches min_region_size.
  for (std::size_t p = 0; p < 7; ++p) {
    std::vector<double> row = {0.8, 0.1 * static_cast<double>(p + 1)};
    const int label = ensemble.add_point(row, piecewise(row[0], row[1]), rng);
    EXPECT_EQ(label, 1);
    EXPECT_EQ(ensemble.region_count(), p + 1 >= 5 ? 2u : 1u);
  }
  EXPECT_EQ(ensemble.training_size(), 37u);
  // log_params covers both fitted regions.
  const std::size_t per_model = make_paper_kernel()->num_params();
  EXPECT_EQ(ensemble.log_params().size(), 2 * per_model);
}

TEST(LocalGpr, PendingLogParamsCountMismatchThrows) {
  Rng rng(11);
  const Matrix x = sample_inputs(40, rng);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) y[i] = piecewise(x(i, 0), x(i, 1));

  LocalGprEnsemble ensemble(make_paper_kernel(), &region_of);
  const std::size_t per_model = make_paper_kernel()->num_params();
  EXPECT_THROW(
      ensemble.set_pending_log_params(std::vector<double>(per_model + 1, 0.0)),
      std::runtime_error);
  // Valid multiple but wrong model count for the upcoming fit (2 regions
  // + 1 global = 3 models, not 1).
  ensemble.set_pending_log_params(std::vector<double>(per_model, 0.0));
  Rng r2(11);
  EXPECT_THROW(ensemble.fit(x, y, r2), std::runtime_error);
}

TEST(LocalGpr, PendingLogParamsRebuildMatchesOriginalFit) {
  Rng rng(12);
  const Matrix x = sample_inputs(50, rng);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) y[i] = piecewise(x(i, 0), x(i, 1));

  LocalGprEnsemble first(make_paper_kernel(), &region_of);
  Rng r1(13);
  first.fit(x, y, r1);
  const std::vector<double> theta = first.log_params();

  GprOptions no_opt;
  no_opt.optimize = false;
  LocalGprEnsemble second(make_paper_kernel(), &region_of, no_opt);
  second.set_pending_log_params(theta);
  Rng r2(99);  // never consumed with optimization off
  second.fit(x, y, r2);
  EXPECT_EQ(second.log_params(), theta);

  const Matrix q = sample_inputs(10, rng);
  const Prediction p1 = first.predict(q);
  const Prediction p2 = second.predict(q);
  for (std::size_t i = 0; i < q.rows(); ++i) {
    EXPECT_EQ(p1.mean[i], p2.mean[i]);
    EXPECT_EQ(p1.stddev[i], p2.stddev[i]);
  }
}

TEST(LocalGpr, PredictionOrderIsPreserved) {
  // Queries alternating between regions must come back in query order.
  Rng rng(6);
  const Matrix x_train = sample_inputs(40, rng);
  std::vector<double> y_train(x_train.rows());
  for (std::size_t i = 0; i < x_train.rows(); ++i) {
    y_train[i] = piecewise(x_train(i, 0), x_train(i, 1));
  }
  LocalGprEnsemble ensemble(make_paper_kernel(), &region_of);
  ensemble.fit(x_train, y_train, rng);

  Matrix q(4, 2);
  q(0, 0) = 0.9; q(0, 1) = 0.5;  // region 1: value ~5
  q(1, 0) = 0.1; q(1, 1) = 0.5;  // region 0: value in [-1, 1]
  q(2, 0) = 0.8; q(2, 1) = 0.2;  // region 1
  q(3, 0) = 0.2; q(3, 1) = 0.2;  // region 0
  const Prediction pred = ensemble.predict(q);
  EXPECT_GT(pred.mean[0], 3.0);
  EXPECT_LT(pred.mean[1], 3.0);
  EXPECT_GT(pred.mean[2], 3.0);
  EXPECT_LT(pred.mean[3], 3.0);
}

}  // namespace
