#include "alamr/gp/local.hpp"

#include <cmath>
#include <stdexcept>

namespace alamr::gp {

namespace {

void gather_group(const Matrix& x, std::span<const double> y,
                  std::span<const std::size_t> rows, Matrix& x_out,
                  std::vector<double>& y_out) {
  x_out = Matrix(rows.size(), x.cols());
  y_out.resize(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      x_out(r, c) = x(rows[r], c);
    }
    y_out[r] = y[rows[r]];
  }
}

}  // namespace

LocalGprEnsemble::LocalGprEnsemble(std::unique_ptr<Kernel> prototype,
                                   RegionLabeler labeler, GprOptions options)
    : prototype_(std::move(prototype)),
      labeler_(std::move(labeler)),
      options_(options) {
  if (!prototype_) {
    throw std::invalid_argument("LocalGprEnsemble: null kernel prototype");
  }
  if (!labeler_) {
    throw std::invalid_argument("LocalGprEnsemble: null labeler");
  }
}

LocalGprEnsemble::LocalGprEnsemble(const LocalGprEnsemble& other)
    : prototype_(other.prototype_ ? other.prototype_->clone() : nullptr),
      labeler_(other.labeler_),
      options_(other.options_),
      min_region_size_(other.min_region_size_),
      base_(other.base_),
      fallback_(other.fallback_),
      fitted_(other.fitted_),
      global_(other.global_),
      regions_(other.regions_),
      y_sum_(other.y_sum_),
      n_train_(other.n_train_),
      pending_theta_(other.pending_theta_),
      pending_theta_used_(other.pending_theta_used_) {}

LocalGprEnsemble& LocalGprEnsemble::operator=(const LocalGprEnsemble& other) {
  if (this != &other) {
    LocalGprEnsemble copy(other);
    *this = std::move(copy);
  }
  return *this;
}

void LocalGprEnsemble::set_labeler(RegionLabeler labeler) {
  if (!labeler) {
    throw std::invalid_argument("LocalGprEnsemble::set_labeler: null labeler");
  }
  labeler_ = std::move(labeler);
}

void LocalGprEnsemble::fit(const Matrix& x, std::span<const double> y,
                           stats::Rng& rng, std::size_t min_region_size) {
  fit(x, y, rng, FitSpec{.min_region_size = min_region_size});
}

void LocalGprEnsemble::fit_region_model(Region& region, stats::Rng& rng) {
  GaussianProcessRegressor model(prototype_->clone(), options_);
  if (!pending_theta_.empty()) {
    const std::size_t p = prototype_->num_params();
    if (pending_theta_used_ + p > pending_theta_.size()) {
      throw std::runtime_error(
          "LocalGprEnsemble::fit: staged log-params exhausted (model count "
          "mismatch)");
    }
    model.set_kernel_log_params(
        std::span<const double>(pending_theta_)
            .subspan(pending_theta_used_, p));
    pending_theta_used_ += p;
  }
  model.fit(region.x, region.y, rng, base_, region.rows);
  region.model.emplace(std::move(model));
}

void LocalGprEnsemble::fit(const Matrix& x, std::span<const double> y,
                           stats::Rng& rng, const FitSpec& spec) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("LocalGprEnsemble::fit: bad training data");
  }
  if (spec.base != nullptr && spec.rows.size() != x.rows()) {
    throw std::invalid_argument(
        "LocalGprEnsemble::fit: base bound but rows does not cover x");
  }
  min_region_size_ = spec.min_region_size;
  base_ = spec.base;
  fallback_ = spec.fallback;
  pending_theta_used_ = 0;

  // Running prior mean: in-order sum, the same bits an incremental
  // add_point sequence over the same data accumulates.
  y_sum_ = 0.0;
  for (const double v : y) y_sum_ += v;
  n_train_ = x.rows();

  // Group row indices by region label.
  std::map<int, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    groups[labeler_(x.row(i))].push_back(i);
  }

  // Staged-theta count check, BEFORE any model consumes rng: the staged
  // slices must cover exactly the models this fit will build.
  if (!pending_theta_.empty()) {
    const std::size_t p = prototype_->num_params();
    std::size_t models = fallback_ == Fallback::kGlobalModel ? 1 : 0;
    for (const auto& [label, rows] : groups) {
      if (rows.size() >= min_region_size_) ++models;
    }
    if (pending_theta_.size() != models * p) {
      throw std::runtime_error(
          "LocalGprEnsemble::fit: staged log-params count does not match the "
          "models this fit builds");
    }
  }

  // Global fallback on all data (rng order: global first, then regions in
  // ascending label order — the historical sequence).
  global_.reset();
  if (fallback_ == Fallback::kGlobalModel) {
    GaussianProcessRegressor model(prototype_->clone(), options_);
    if (!pending_theta_.empty()) {
      // The global slice is staged LAST (log_params() order) but consumed
      // first; regions start after it... keep consumption in log_params()
      // order instead: regions first. To preserve the historical rng
      // order (global fit first) while consuming theta in log_params()
      // order (regions first, global last), slice the global's theta from
      // the tail explicitly.
      const std::size_t p = prototype_->num_params();
      model.set_kernel_log_params(
          std::span<const double>(pending_theta_)
              .subspan(pending_theta_.size() - p, p));
    }
    model.fit(x, y, rng, spec.base, spec.rows);
    global_.emplace(std::move(model));
  }

  regions_.clear();
  for (const auto& [label, rows] : groups) {
    Region region;
    gather_group(x, y, rows, region.x, region.y);
    if (base_ != nullptr) {
      region.rows.reserve(rows.size());
      for (const std::size_t r : rows) region.rows.push_back(spec.rows[r]);
    }
    auto [it, inserted] = regions_.emplace(label, std::move(region));
    if (it->second.y.size() >= min_region_size_) {
      fit_region_model(it->second, rng);
    }
  }
  pending_theta_.clear();
  pending_theta_used_ = 0;
  fitted_ = true;
}

int LocalGprEnsemble::add_point(std::span<const double> x, double y,
                                stats::Rng& rng, std::size_t row) {
  if (!fitted_) {
    throw std::logic_error("LocalGprEnsemble::add_point before fit");
  }
  const int label = labeler_(x);
  Region& region = regions_[label];
  region.x.push_row(x);
  region.y.push_back(y);
  if (base_ != nullptr) region.rows.push_back(row);
  y_sum_ += y;
  ++n_train_;

  if (global_) global_->fit_add_point(x, y, rng);
  if (region.model) {
    region.model->fit_add_point(x, y, rng);
  } else if (region.y.size() >= min_region_size_) {
    fit_region_model(region, rng);
  }
  return label;
}

Prediction LocalGprEnsemble::prior_prediction(const Matrix& x) const {
  Prediction out;
  out.mean.assign(x.rows(), prior_mean());
  out.stddev = prototype_->diagonal(x);
  for (double& v : out.stddev) v = std::sqrt(v);
  return out;
}

Prediction LocalGprEnsemble::predict(const Matrix& x) const {
  if (!fitted_) throw std::logic_error("LocalGprEnsemble::predict before fit");

  // Dispatch query rows to their regions, predict per region in one
  // batch, then scatter results back into query order. Rows whose region
  // has no model of its own collect in a separate fallback bucket — NOT
  // keyed by a sentinel label, so a labeler that legitimately returns
  // INT_MIN still routes to that region's model (regression-tested).
  std::map<int, std::vector<std::size_t>> groups;
  std::vector<std::size_t> fallback_rows;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const int label = labeler_(x.row(i));
    const auto it = regions_.find(label);
    if (it != regions_.end() && it->second.model) {
      groups[label].push_back(i);
    } else {
      fallback_rows.push_back(i);
    }
  }

  Prediction out;
  out.mean.resize(x.rows());
  out.stddev.resize(x.rows());
  const auto scatter = [&](std::span<const std::size_t> rows,
                           const Prediction& group) {
    for (std::size_t r = 0; r < rows.size(); ++r) {
      out.mean[rows[r]] = group.mean[r];
      out.stddev[rows[r]] = group.stddev[r];
    }
  };
  Matrix x_group;
  std::vector<double> unused;
  for (const auto& [label, rows] : groups) {
    x_group.resize_discard(0, 0);
    x_group = Matrix(rows.size(), x.cols());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) {
        x_group(r, c) = x(rows[r], c);
      }
    }
    scatter(rows, regions_.at(label).model->predict(x_group));
  }
  if (!fallback_rows.empty()) {
    Matrix x_fall(fallback_rows.size(), x.cols());
    for (std::size_t r = 0; r < fallback_rows.size(); ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) {
        x_fall(r, c) = x(fallback_rows[r], c);
      }
    }
    // Empty-region fallback: the global model when one was fitted, else
    // the global PRIOR — never an absent ("empty") expert.
    scatter(fallback_rows,
            global_ ? global_->predict(x_fall) : prior_prediction(x_fall));
  }
  return out;
}

std::vector<double> LocalGprEnsemble::predict_mean(const Matrix& x) const {
  if (!fitted_) {
    throw std::logic_error("LocalGprEnsemble::predict_mean before fit");
  }
  std::map<int, std::vector<std::size_t>> groups;
  std::vector<std::size_t> fallback_rows;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const int label = labeler_(x.row(i));
    const auto it = regions_.find(label);
    if (it != regions_.end() && it->second.model) {
      groups[label].push_back(i);
    } else {
      fallback_rows.push_back(i);
    }
  }
  std::vector<double> out(x.rows());
  const auto scatter = [&](std::span<const std::size_t> rows,
                           std::span<const double> mu) {
    for (std::size_t r = 0; r < rows.size(); ++r) out[rows[r]] = mu[r];
  };
  for (const auto& [label, rows] : groups) {
    Matrix x_group(rows.size(), x.cols());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) {
        x_group(r, c) = x(rows[r], c);
      }
    }
    scatter(rows, regions_.at(label).model->predict_mean(x_group));
  }
  if (!fallback_rows.empty()) {
    if (global_) {
      Matrix x_fall(fallback_rows.size(), x.cols());
      for (std::size_t r = 0; r < fallback_rows.size(); ++r) {
        for (std::size_t c = 0; c < x.cols(); ++c) {
          x_fall(r, c) = x(fallback_rows[r], c);
        }
      }
      scatter(fallback_rows, global_->predict_mean(x_fall));
    } else {
      for (const std::size_t r : fallback_rows) out[r] = prior_mean();
    }
  }
  return out;
}

double LocalGprEnsemble::lml() const {
  if (!fitted_) throw std::logic_error("LocalGprEnsemble::lml before fit");
  double total = 0.0;
  for (const auto& [label, region] : regions_) {
    if (region.model) total += region.model->log_marginal_likelihood();
  }
  if (global_) total += global_->log_marginal_likelihood();
  return total;
}

std::vector<double> LocalGprEnsemble::log_params() const {
  std::vector<double> theta;
  for (const auto& [label, region] : regions_) {
    if (!region.model) continue;
    const std::vector<double> p = region.model->kernel().log_params();
    theta.insert(theta.end(), p.begin(), p.end());
  }
  if (global_) {
    const std::vector<double> p = global_->kernel().log_params();
    theta.insert(theta.end(), p.begin(), p.end());
  }
  return theta;
}

void LocalGprEnsemble::set_pending_log_params(std::span<const double> theta) {
  const std::size_t p = prototype_->num_params();
  if (p == 0 || theta.size() % p != 0) {
    throw std::runtime_error(
        "LocalGprEnsemble::set_pending_log_params: length is not a multiple "
        "of the prototype's parameter count");
  }
  pending_theta_.assign(theta.begin(), theta.end());
  pending_theta_used_ = 0;
}

void LocalGprEnsemble::set_options(const GprOptions& options) {
  options_ = options;
  for (auto& [label, region] : regions_) {
    if (region.model) region.model->set_options(options);
  }
  if (global_) global_->set_options(options);
}

std::size_t LocalGprEnsemble::region_count() const noexcept {
  std::size_t count = 0;
  for (const auto& [label, region] : regions_) {
    if (region.model) ++count;
  }
  return count;
}

double LocalGprEnsemble::prior_mean() const noexcept {
  return n_train_ == 0 ? 0.0 : y_sum_ / static_cast<double>(n_train_);
}

std::vector<int> LocalGprEnsemble::region_labels() const {
  std::vector<int> labels;
  for (const auto& [label, region] : regions_) {
    if (region.model) labels.push_back(label);
  }
  return labels;
}

const GaussianProcessRegressor& LocalGprEnsemble::region_model(int label) const {
  const auto it = regions_.find(label);
  if (it == regions_.end() || !it->second.model) {
    throw std::out_of_range("LocalGprEnsemble: no model for label");
  }
  return *it->second.model;
}

}  // namespace alamr::gp
