file(REMOVE_RECURSE
  "CMakeFiles/alamr_data.dir/csv.cpp.o"
  "CMakeFiles/alamr_data.dir/csv.cpp.o.d"
  "CMakeFiles/alamr_data.dir/dataset.cpp.o"
  "CMakeFiles/alamr_data.dir/dataset.cpp.o.d"
  "CMakeFiles/alamr_data.dir/partition.cpp.o"
  "CMakeFiles/alamr_data.dir/partition.cpp.o.d"
  "CMakeFiles/alamr_data.dir/transforms.cpp.o"
  "CMakeFiles/alamr_data.dir/transforms.cpp.o.d"
  "libalamr_data.a"
  "libalamr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alamr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
