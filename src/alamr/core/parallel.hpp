#pragma once

// Process-wide thread pool for the AL engine's data-parallel loops
// (multistart hyperparameter restarts, per-query predictive-variance
// solves, trajectory fan-out in the batch runner and benches).
//
// Determinism contract: every parallel_for splits [0, n) into contiguous
// index ranges and the callback writes only to caller-owned slots indexed
// by i. Under that contract results are bit-identical for EVERY thread
// count — parallelism never changes which floating-point operations run,
// only which thread runs them. `ALAMR_THREADS=1` additionally runs all
// work inline on the calling thread (no worker threads are ever spawned),
// which is the fully serial reference path.
//
// Pool size: `ALAMR_THREADS` env var when set (>= 1), otherwise
// std::thread::hardware_concurrency(). Nested parallel_for calls (e.g. a
// GPR predict inside a trajectory that is itself a pool task) execute
// serially inline instead of deadlocking on the shared queue.
//
// This header is intentionally standalone (standard library plus the
// equally standalone trace.hpp) so the lower layers (opt, gp) can include
// it without depending on the core module's library.

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "alamr/core/trace.hpp"

namespace alamr::core {

/// Pool size used by the global pool: ALAMR_THREADS when set to a positive
/// integer, otherwise hardware_concurrency (minimum 1).
inline std::size_t configured_parallel_threads() {
  if (const char* env = std::getenv("ALAMR_THREADS")) {
    if (*env != '\0') {
      const unsigned long long v = std::strtoull(env, nullptr, 10);
      if (v >= 1) return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Fixed-size pool of `threads - 1` workers; the thread that calls
/// parallel_for always executes the first chunk itself, so `threads`
/// counts total execution lanes. A pool of 1 lane never spawns a thread.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = configured_parallel_threads()) {
    const std::size_t extra = threads > 1 ? threads - 1 : 0;
    workers_.reserve(extra);
    for (std::size_t t = 0; t < extra; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Execution lanes, including the calling thread.
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Runs fn(begin, end) over a partition of [0, n) into at most size()
  /// contiguous ranges. Serial (single inline fn(0, n) call) when the pool
  /// has one lane, n < 2, or the caller is itself a pool task. The first
  /// exception thrown by any range is rethrown in the calling thread after
  /// every range has finished.
  template <typename Fn>
  void parallel_for_chunks(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    const std::size_t lanes = std::min(size(), n);
    if (lanes <= 1 || in_task_) {
      fn(std::size_t{0}, n);
      return;
    }

    struct Job {
      std::mutex m;
      std::condition_variable done;
      std::size_t remaining = 0;
      std::exception_ptr error;
    } job;
    job.remaining = lanes - 1;

    const auto bound = [n, lanes](std::size_t c) { return c * n / lanes; };
    const auto run_range = [&fn, &job](std::size_t begin, std::size_t end) {
      try {
        fn(begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> jl(job.m);
        if (!job.error) job.error = std::current_exception();
      }
    };

    // Counted on the submitting thread so a traced trajectory's collector
    // sees its own fan-out.
    trace::count("pool.tasks", lanes - 1);

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t c = 1; c < lanes; ++c) {
        tasks_.emplace_back([&run_range, &bound, &job, c] {
          run_range(bound(c), bound(c + 1));
          // Decrement and notify under the job mutex so the waiter cannot
          // destroy `job` between our decrement and the notify.
          const std::lock_guard<std::mutex> jl(job.m);
          if (--job.remaining == 0) job.done.notify_all();
        });
      }
    }
    wake_.notify_all();

    // The caller runs its own chunk with the nesting flag set so that any
    // parallel_for issued from inside fn degrades to serial.
    in_task_ = true;
    run_range(bound(0), bound(1));
    in_task_ = false;

    std::unique_lock<std::mutex> jl(job.m);
    job.done.wait(jl, [&job] { return job.remaining == 0; });
    if (job.error) std::rethrow_exception(job.error);
  }

  /// Element-wise form: fn(i) for i in [0, n), same contract as above.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    parallel_for_chunks(n, [&fn](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }

  /// Marks the calling thread pool-nested for the scope's lifetime: every
  /// parallel_for it issues runs serially inline (bit-identical by the
  /// determinism contract). Background threads that pool tasks can BLOCK
  /// on (e.g. retrain workers joined from inside a drained batch) must
  /// hold one, otherwise their own fan-out waits on the shared queue while
  /// the queue's lanes wait on them — a cross-pool starvation deadlock.
  class ScopedInline {
   public:
    ScopedInline() : prev_(in_task_) { in_task_ = true; }
    ~ScopedInline() { in_task_ = prev_; }
    ScopedInline(const ScopedInline&) = delete;
    ScopedInline& operator=(const ScopedInline&) = delete;

   private:
    bool prev_;
  };

 private:
  void worker_loop() {
    in_task_ = true;  // anything a worker runs is pool work: nest serially
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping, queue drained
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  inline static thread_local bool in_task_ = false;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

namespace detail {
inline std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>();
  return pool;
}
}  // namespace detail

/// The process-wide pool, sized from ALAMR_THREADS /
/// hardware_concurrency on first use.
inline ThreadPool& global_pool() { return *detail::global_pool_slot(); }

/// Rebuilds the global pool with `threads` lanes (0 = re-read the
/// environment). Test/bench hook; must not race concurrent parallel_for
/// calls on the old pool.
inline void set_global_parallel_threads(std::size_t threads) {
  detail::global_pool_slot() = std::make_unique<ThreadPool>(
      threads == 0 ? configured_parallel_threads() : threads);
}

/// parallel_for on the global pool.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  global_pool().parallel_for(n, std::forward<Fn>(fn));
}

/// parallel_for_chunks on the global pool.
template <typename Fn>
void parallel_for_chunks(std::size_t n, Fn&& fn) {
  global_pool().parallel_for_chunks(n, std::forward<Fn>(fn));
}

}  // namespace alamr::core
