#include "alamr/core/online.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "alamr/core/metrics.hpp"

namespace alamr::core {

OnlineAlDriver::OnlineAlDriver(linalg::Matrix candidate_grid,
                               ExperimentOracle oracle, OnlineAlOptions options)
    : grid_(std::move(candidate_grid)),
      oracle_(std::move(oracle)),
      options_(options) {
  if (grid_.rows() == 0) {
    throw std::invalid_argument("OnlineAlDriver: empty candidate grid");
  }
  if (!oracle_) {
    throw std::invalid_argument("OnlineAlDriver: null oracle");
  }
  if (options_.n_init == 0) {
    throw std::invalid_argument("OnlineAlDriver: n_init must be >= 1");
  }
  if (options_.n_init + options_.iterations > grid_.rows()) {
    throw std::invalid_argument(
        "OnlineAlDriver: grid smaller than n_init + iterations");
  }
  grid_scaled_ = data::FeatureScaler::fit(grid_).transform(grid_);
}

OnlineResult OnlineAlDriver::run(const Strategy& strategy, stats::Rng& rng) {
  if (ran_) throw std::logic_error("OnlineAlDriver::run: already ran");
  ran_ = true;

  OnlineResult result;
  const bool track_regret = !std::isnan(options_.memory_limit_log10);
  const double limit_mb =
      track_regret ? std::pow(10.0, options_.memory_limit_log10) : 0.0;

  std::vector<std::size_t> remaining(grid_.rows());
  for (std::size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;

  std::vector<std::size_t> visited;
  std::vector<double> log_cost;
  std::vector<double> log_mem;
  double cc = 0.0;
  double cr = 0.0;

  const auto execute = [&](std::size_t local, double mu_c, double mu_m,
                           bool initial) {
    const std::size_t row = remaining[local];
    const auto [cost, memory] = oracle_(grid_.row(row));
    if (!(cost > 0.0) || !(memory > 0.0)) {
      throw std::runtime_error("OnlineAlDriver: oracle returned non-positive "
                               "measurement");
    }
    OnlineRecord record;
    record.grid_row = row;
    record.cost = cost;
    record.memory = memory;
    record.predicted_cost_log10 = mu_c;
    record.predicted_mem_log10 = mu_m;
    record.initial_phase = initial;
    cc += cost;
    if (track_regret) cr += individual_regret(cost, memory, limit_mb);
    record.cumulative_cost = cc;
    record.cumulative_regret = cr;
    result.records.push_back(record);

    visited.push_back(row);
    log_cost.push_back(std::log10(cost));
    log_mem.push_back(std::log10(memory));
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(local));
    ++visited_count_;
  };

  // Initial phase: uniformly random picks (experimenter intuition /
  // verification runs in the paper's workflow).
  for (std::size_t i = 0; i < options_.n_init; ++i) {
    execute(rng.uniform_index(remaining.size()), 0.0, 0.0, /*initial=*/true);
  }

  auto gather_scaled = [&](std::span<const std::size_t> rows) {
    linalg::Matrix out(rows.size(), grid_scaled_.cols());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (std::size_t c = 0; c < grid_scaled_.cols(); ++c) {
        out(r, c) = grid_scaled_(rows[r], c);
      }
    }
    return out;
  };

  gp::GaussianProcessRegressor gpr_cost(gp::make_paper_kernel(),
                                        options_.initial_fit);
  gp::GaussianProcessRegressor gpr_mem(gp::make_paper_kernel(),
                                       options_.initial_fit);
  gpr_cost.fit(gather_scaled(visited), log_cost, rng);
  gpr_mem.fit(gather_scaled(visited), log_mem, rng);
  gpr_cost.set_options(options_.refit);
  gpr_mem.set_options(options_.refit);

  for (std::size_t iter = 0; iter < options_.iterations && !remaining.empty();
       ++iter) {
    const linalg::Matrix x_remaining = gather_scaled(remaining);
    const gp::Prediction pred_cost = gpr_cost.predict(x_remaining);
    const gp::Prediction pred_mem = gpr_mem.predict(x_remaining);
    const CandidateView view{x_remaining, pred_cost.mean, pred_cost.stddev,
                             pred_mem.mean, pred_mem.stddev};
    const std::optional<std::size_t> pick = strategy.select(view, rng);
    if (!pick) {
      result.exhausted_safe_candidates = true;
      break;
    }
    execute(*pick, pred_cost.mean[*pick], pred_mem.mean[*pick],
            /*initial=*/false);
    gpr_cost.fit(gather_scaled(visited), log_cost, rng);
    gpr_mem.fit(gather_scaled(visited), log_mem, rng);
  }

  result.cost_model =
      std::make_unique<gp::GaussianProcessRegressor>(std::move(gpr_cost));
  result.memory_model =
      std::make_unique<gp::GaussianProcessRegressor>(std::move(gpr_mem));
  return result;
}

}  // namespace alamr::core
