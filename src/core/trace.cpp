#include "alamr/core/trace.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string>

namespace alamr::core::trace {

namespace {

// Shortest round-trippable representation, like export.cpp.
void append_double(std::ostringstream& out, double value) {
  out << std::setprecision(17) << value;
}

void json_escaped(std::ostringstream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open file for writing: " + path.string());
  }
  out << content;
  if (!out) {
    throw std::runtime_error("failed writing file: " + path.string());
  }
}

double mean_seconds(const PhaseStats& stats) {
  return stats.calls == 0 ? 0.0
                          : stats.total_seconds / static_cast<double>(stats.calls);
}

// min_seconds is +inf until the first sample; serialize untouched stats as 0.
double min_or_zero(const PhaseStats& stats) {
  return stats.calls == 0 ? 0.0 : stats.min_seconds;
}

}  // namespace

std::string trace_report_to_json(const TraceReport& report) {
  std::ostringstream out;
  out << "{\n  \"fingerprint\": ";
  json_escaped(out, report.fingerprint);
  out << ",\n  \"counters\": {";
  for (std::size_t i = 0; i < report.counters.size(); ++i) {
    out << (i == 0 ? "\n    " : ",\n    ");
    json_escaped(out, report.counters[i].name);
    out << ": " << report.counters[i].value;
  }
  out << (report.counters.empty() ? "}" : "\n  }");
  out << ",\n  \"phases\": {";
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    const PhaseStats& stats = report.phases[i].stats;
    out << (i == 0 ? "\n    " : ",\n    ");
    json_escaped(out, report.phases[i].name);
    out << ": {\"calls\": " << stats.calls << ", \"total_s\": ";
    append_double(out, stats.total_seconds);
    out << ", \"mean_s\": ";
    append_double(out, mean_seconds(stats));
    out << ", \"min_s\": ";
    append_double(out, min_or_zero(stats));
    out << ", \"max_s\": ";
    append_double(out, stats.max_seconds);
    out << ", \"histogram_us\": [";
    for (std::size_t b = 0; b < stats.histogram.size(); ++b) {
      if (b != 0) out << ", ";
      out << stats.histogram[b];
    }
    out << "]}";
  }
  out << (report.phases.empty() ? "}" : "\n  }");
  out << "\n}\n";
  return out.str();
}

std::string trace_report_to_csv(const TraceReport& report) {
  std::ostringstream out;
  out << "kind,name,value,calls,total_s,mean_s,min_s,max_s\n";
  out << "fingerprint," << report.fingerprint << ",,,,,,\n";
  for (const CounterValue& counter : report.counters) {
    out << "counter," << counter.name << ',' << counter.value << ",,,,,\n";
  }
  for (const PhaseValue& phase : report.phases) {
    out << "phase," << phase.name << ",," << phase.stats.calls << ',';
    append_double(out, phase.stats.total_seconds);
    out << ',';
    append_double(out, mean_seconds(phase.stats));
    out << ',';
    append_double(out, min_or_zero(phase.stats));
    out << ',';
    append_double(out, phase.stats.max_seconds);
    out << '\n';
  }
  return out.str();
}

void write_trace_json(const TraceReport& report,
                      const std::filesystem::path& path) {
  write_file(path, trace_report_to_json(report));
}

void write_trace_csv(const TraceReport& report,
                     const std::filesystem::path& path) {
  write_file(path, trace_report_to_csv(report));
}

std::optional<std::string> parse_trace_flag(int argc, char** argv) {
  static constexpr std::string_view kFlag = "--trace";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == kFlag && i + 1 < argc) {
      set_enabled(true);
      return std::string(argv[i + 1]);
    }
    if (arg.size() > kFlag.size() + 1 && arg.substr(0, kFlag.size()) == kFlag &&
        arg[kFlag.size()] == '=') {
      set_enabled(true);
      return std::string(arg.substr(kFlag.size() + 1));
    }
  }
  return std::nullopt;
}

void write_global_trace(const std::string& path) {
  const TraceReport report = global_report();
  write_trace_json(report, path);
  write_trace_csv(report, path + ".csv");
}

}  // namespace alamr::core::trace
