// E1 — paper Fig. 1: the shock-bubble AMR simulation at increasing
// refinement levels. The paper's figure is a flow visualization; the
// quantitative content we regenerate is how refinement tracks the flow
// features and how work grows with maxlevel. Prints per-level patch/cell
// counts, solver work, and an ASCII map of the refinement level across
// the domain at the final time.

#include <cstdio>

#include "alamr/amr/render.hpp"
#include "alamr/amr/solver.hpp"
#include "bench_common.hpp"

namespace {

void render_level_map(const alamr::amr::QuadtreeMesh& mesh) {
  const auto& problem = mesh.problem();
  constexpr int kCols = 72;
  const int rows = static_cast<int>(kCols * problem.height / problem.width / 2);
  for (int r = rows - 1; r >= 0; --r) {
    std::printf("  ");
    for (int c = 0; c < kCols; ++c) {
      const double x = (c + 0.5) / kCols * problem.width;
      const double y = (r + 0.5) / rows * problem.height;
      const int level = mesh.level_at(x, y);
      std::printf("%c", level < 0 ? '?' : static_cast<char>('0' + level));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace alamr;
  bench::print_header(
      "E1: AMR refinement structure vs maxlevel", "Fig. 1",
      "refinement follows shock + bubble; cells/steps grow ~4x/2x per level");

  std::printf("\n%9s %8s %10s %8s %14s %12s\n", "maxlevel", "leaves", "cells",
              "steps", "cell-updates", "peak cells");
  const int top_level = bench::quick_mode() ? 4 : 6;
  for (int level = 3; level <= top_level; ++level) {
    amr::ShockBubbleProblem problem;
    problem.mx = 8;
    problem.max_level = level;
    problem.r0 = 0.35;
    problem.rhoin = 0.1;
    amr::FvSolver solver(problem);
    const amr::SolverStats stats = solver.run();
    std::printf("%9d %8zu %10zu %8zu %14zu %12zu\n", level,
                solver.mesh().leaf_count(), solver.mesh().total_cells(),
                stats.steps, stats.total_cell_updates, stats.peak_cells);

    if (level == std::min(5, top_level)) {
      // Fig. 1 stand-ins: grayscale rasters of the final density field and
      // refinement-level map (any image viewer opens PGM).
      alamr::amr::write_pgm(solver.mesh(), amr::RenderField::kDensity,
                            "fig1_density.pgm");
      alamr::amr::write_pgm(solver.mesh(), amr::RenderField::kRefinementLevel,
                            "fig1_levels.pgm");
      std::printf("\nWrote fig1_density.pgm and fig1_levels.pgm\n");
      std::printf("\nRefinement-level map at t = %.3f (maxlevel %d); digits "
                  "are levels:\n",
                  problem.final_time, level);
      render_level_map(solver.mesh());
      std::printf("\nPer-level leaf counts: ");
      const auto per_level = solver.mesh().leaves_per_level();
      for (std::size_t l = 0; l < per_level.size(); ++l) {
        std::printf("L%zu=%zu ", l, per_level[l]);
      }
      std::printf("\n\n");
    }
  }
  return 0;
}
