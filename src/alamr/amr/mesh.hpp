#pragma once

// Block-structured quadtree mesh (ForestClaw style): a brick of root
// patches, each refined adaptively into an mx-by-mx patch hierarchy with
// 2:1 level balance between face neighbors. Only leaves store state.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "alamr/amr/patch.hpp"
#include "alamr/amr/problem.hpp"

namespace alamr::amr {

/// Connectivity of one leaf, used by the machine model to price ghost
/// exchange: each entry is (index of the neighbor in SFC order, number of
/// ghost cells exchanged across the shared face per step).
struct LeafEdge {
  std::size_t neighbor = 0;
  int ghost_cells = 0;
};

/// A partition-ready snapshot of the mesh: leaves in SFC (quadtree DFS)
/// order with their size and face adjacency.
struct MeshTopology {
  std::vector<PatchKey> keys;          // SFC order
  std::vector<std::size_t> cells;      // interior cells per leaf
  std::vector<std::vector<LeafEdge>> edges;  // per leaf, both directions

  std::size_t total_cells() const noexcept;
};

class QuadtreeMesh {
 public:
  /// Builds the root brick, applies the initial condition, and performs
  /// max_level rounds of initial refinement (re-evaluating the analytic
  /// initial condition on newly created fine patches).
  explicit QuadtreeMesh(const ShockBubbleProblem& problem);

  const ShockBubbleProblem& problem() const noexcept { return problem_; }

  std::size_t leaf_count() const noexcept { return leaves_.size(); }
  std::size_t total_cells() const noexcept;
  int finest_level() const noexcept;

  /// Patch edge length / cell size at a level.
  double patch_size(int level) const noexcept;
  double cell_size(int level) const noexcept;

  /// Lower-left corner of a patch in domain coordinates.
  double patch_x0(const PatchKey& key) const noexcept;
  double patch_y0(const PatchKey& key) const noexcept;

  bool is_leaf(const PatchKey& key) const noexcept;
  Patch& leaf(const PatchKey& key);
  const Patch& leaf(const PatchKey& key) const;

  /// True if the key is inside the logical patch grid of its level.
  bool in_domain(const PatchKey& key) const noexcept;

  /// Fills all ghost layers: same-level copy, coarse-fine interpolation
  /// (piecewise-constant from coarse, 2x2 conservative average from fine),
  /// and physical boundary conditions.
  void fill_ghosts();

  /// CFL-limited global timestep (requires valid interior data).
  double compute_dt() const;

  /// One regrid pass: flag by the density-jump indicator, enforce 2:1
  /// balance, refine flagged leaves (piecewise-constant prolongation),
  /// coarsen eligible sibling quartets (conservative averaging).
  /// Returns the number of leaves refined + coarsened.
  std::size_t regrid();

  /// Leaves in quadtree DFS (p4est) order.
  std::vector<PatchKey> leaves_in_sfc_order() const;

  /// Topology snapshot for the machine model.
  MeshTopology topology() const;

  /// Per-level leaf counts, index = level (for Fig. 1 reporting).
  std::vector<std::size_t> leaves_per_level() const;

  /// Total density integral over the domain (sum rho * cell area);
  /// conserved up to coarse-fine flux mismatch and boundary fluxes.
  double total_mass() const;

  /// Refinement level of the leaf containing domain point (x, y); -1 when
  /// the point is outside the domain. Used to render Fig. 1-style maps.
  int level_at(double x, double y) const;

  /// Cell-value density at the leaf cell containing (x, y); NaN outside.
  double rho_at(double x, double y) const;

  /// Invokes f(patch) for every leaf (mutable / const overloads).
  template <typename F>
  void for_each_leaf(F&& f) {
    for (auto& [key, patch] : leaves_) f(patch);
  }
  template <typename F>
  void for_each_leaf(F&& f) const {
    for (const auto& [key, patch] : leaves_) f(patch);
  }

  /// Applies `f(x_center, y_center) -> Cons` to every interior cell of
  /// every leaf (used for initial conditions and tests).
  template <typename F>
  void for_each_cell_set(F&& f) {
    for (auto& [key, patch] : leaves_) {
      const double h = cell_size(key.level);
      const double x0 = patch_x0(key);
      const double y0 = patch_y0(key);
      for (int j = 0; j < patch.mx(); ++j) {
        for (int i = 0; i < patch.mx(); ++i) {
          patch.at(i, j) = f(x0 + (i + 0.5) * h, y0 + (j + 0.5) * h);
        }
      }
    }
  }

 private:
  /// Applies the problem's analytic initial condition to one patch.
  void apply_initial_condition(Patch& patch);

  /// Fills one ghost face of `patch`; assumes 2:1 balance.
  void fill_face(Patch& patch, int face);
  void fill_physical_face(Patch& patch, int face);

  /// Splits a leaf into 4 children (piecewise-constant prolongation).
  void refine_leaf(const PatchKey& key);

  /// Merges 4 sibling leaves into their parent (conservative average).
  void coarsen_quartet(const PatchKey& parent_key);

  void sfc_collect(const PatchKey& key, std::vector<PatchKey>& out) const;

  ShockBubbleProblem problem_;
  std::unordered_map<PatchKey, Patch, PatchKeyHash> leaves_;
};

}  // namespace alamr::amr
