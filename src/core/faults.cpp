#include "alamr/core/faults.hpp"

#include <sstream>
#include <string>

namespace alamr::core::faults {

std::optional<FaultPlan> parse_fault_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--fault-plan" && i + 1 < argc) {
      return FaultPlan::parse(argv[i + 1]);
    }
    if (arg.starts_with("--fault-plan=")) {
      return FaultPlan::parse(arg.substr(13));
    }
  }
  return std::nullopt;
}

std::string describe(const FaultPlan& plan) {
  std::ostringstream os;
  os << "fault plan (seed " << plan.seed() << "):\n";
  bool any = false;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const Site site = static_cast<Site>(i);
    const SiteSchedule& s = plan.at(site);
    if (s.inert()) continue;
    any = true;
    os << "  " << site_name(site) << ":";
    if (s.probability > 0.0) os << " p=" << s.probability;
    if (!s.hits.empty()) {
      os << " hits=";
      for (std::size_t h = 0; h < s.hits.size(); ++h) {
        os << (h == 0 ? "" : "|") << s.hits[h];
      }
    }
    if (s.max_fires != ~std::uint64_t{0}) os << " max=" << s.max_fires;
    os << '\n';
  }
  if (!any) os << "  (no armed sites)\n";
  return os.str();
}

}  // namespace alamr::core::faults
