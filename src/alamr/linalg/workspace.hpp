#pragma once

// Monotonic workspace arena for the AL inner loop (DESIGN.md §10).
//
// Every temporary the steady-state pass needs — candidate feature tiles,
// batched posterior means/variances, triangular-solve scratch — is carved
// out of one per-trajectory Workspace instead of the heap. Allocation is a
// pointer bump; deallocation is a rewind to a checkpoint taken at the top
// of the pass. After a warm-up pass has sized the arena, a steady-state
// pass touches the allocator not at all: chunk growth only happens when
// the high-water mark rises, and the AL active set shrinks monotonically,
// so the first full pass is the high-water mark for the trajectory.
//
// The arena hands out raw double spans (the only scalar type the hot loop
// uses). Alignment is alignof(double) == the chunk allocation alignment,
// so no padding bookkeeping is needed. Not thread-safe: one Workspace per
// trajectory, used only from the thread driving that trajectory (the
// thread-pool engine gives each trajectory to exactly one worker).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace alamr::linalg {

class Workspace {
 public:
  /// Default chunk size (in doubles) for the first heap chunk; later
  /// chunks double geometrically. 4096 doubles = 32 KiB, comfortably
  /// covering small trajectories in one allocation.
  static constexpr std::size_t kMinChunkDoubles = 4096;

  Workspace() = default;
  /// Pre-sizes the first chunk (in doubles) so even the first pass can be
  /// allocation-free when the caller knows the bound.
  explicit Workspace(std::size_t initial_doubles);

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Bump-allocates `n` doubles. Contents unspecified (like operator new).
  /// Only allocates from the heap when no existing chunk has room.
  std::span<double> alloc(std::size_t n);

  /// Bump-allocates `n` doubles and zero-fills them.
  std::span<double> zeros(std::size_t n);

  /// Opaque position marker. Rewinding to a mark frees (for reuse) every
  /// span handed out after it was taken; the spans' memory stays mapped,
  /// so stale reads are bugs the same way use-after-free is.
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
    std::size_t in_use = 0;
  };

  Mark mark() const noexcept;
  void rewind(const Mark& m) noexcept;
  /// Rewinds to empty, keeping all chunks for reuse.
  void reset() noexcept;

  /// RAII checkpoint: rewinds on destruction. The pass loop opens one
  /// Scope per pass, so every exit path — normal advance, censored
  /// `continue`, retry — releases the pass's arena memory without
  /// explicit bookkeeping (ISSUE 5 satellite: kRetryNextCandidate must
  /// not leak checkpoints).
  class Scope {
   public:
    explicit Scope(Workspace& ws) noexcept : ws_(ws), mark_(ws.mark()) {
      ++ws_.open_scopes_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      --ws_.open_scopes_;
      ws_.rewind(mark_);
    }

   private:
    Workspace& ws_;
    Mark mark_;
  };

  /// Doubles currently handed out (since the last full reset/rewind).
  std::size_t doubles_in_use() const noexcept { return in_use_; }
  /// High-water mark of doubles_in_use() over the arena's lifetime.
  std::size_t doubles_peak() const noexcept { return peak_; }
  /// bytes variants, for the `arena.bytes_peak` trace counter.
  std::size_t bytes_in_use() const noexcept { return in_use_ * sizeof(double); }
  std::size_t bytes_peak() const noexcept { return peak_ * sizeof(double); }
  /// Number of heap chunk allocations performed so far. Stable across
  /// steady-state passes once the arena has warmed up.
  std::size_t heap_allocations() const noexcept { return heap_allocations_; }
  /// Currently-open Scope count; 0 between passes unless a checkpoint
  /// leaked.
  std::size_t open_scopes() const noexcept { return open_scopes_; }
  /// Total doubles of chunk capacity owned.
  std::size_t capacity_doubles() const noexcept;

 private:
  struct Chunk {
    std::unique_ptr<double[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  /// Makes chunks_[active_] (possibly a fresh chunk) able to hold `n` more
  /// doubles.
  void ensure_room(std::size_t n);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  std::size_t heap_allocations_ = 0;
  std::size_t open_scopes_ = 0;
};

}  // namespace alamr::linalg
