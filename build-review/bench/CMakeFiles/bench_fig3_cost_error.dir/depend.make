# Empty dependencies file for bench_fig3_cost_error.
# This may be replaced when dependencies are built.
