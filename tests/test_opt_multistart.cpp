// Tests for the multi-restart driver (sklearn's n_restarts_optimizer
// analogue) on multi-modal objectives.

#include "alamr/opt/multistart.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace alamr::opt;
using alamr::stats::Rng;

// Double-well in 1D: minima at x = -1 (value 0) and x = +2 (value -1).
Objective double_well() {
  return [](std::span<const double> x, std::span<double> grad) {
    const double t = x[0];
    // f = (t+1)^2 (t-2)^2 / 4 - step that lowers the right well.
    const double a = (t + 1.0);
    const double b = (t - 2.0);
    const double f = 0.25 * a * a * b * b - 1.0 / (1.0 + std::exp(-4.0 * (t - 0.5)));
    if (!grad.empty()) {
      const double df_poly = 0.5 * a * b * (a + b);
      const double s = 1.0 / (1.0 + std::exp(-4.0 * (t - 0.5)));
      grad[0] = df_poly - 4.0 * s * (1.0 - s);
    }
    return f;
  };
}

TEST(Multistart, EscapesLocalMinimum) {
  // A gradient start in the left basin converges to the worse minimum;
  // restarts inside the bounds should discover the better right basin.
  Bounds bounds;
  bounds.lower = {-3.0};
  bounds.upper = {4.0};

  MultistartOptions no_restart;
  no_restart.restarts = 0;
  Rng rng1(11);
  const OptimizeResult local = multistart_minimize(
      double_well(), std::vector<double>{-1.2}, bounds, no_restart, rng1);
  EXPECT_NEAR(local.x[0], -1.0, 0.2);  // trapped in the left well

  MultistartOptions with_restarts;
  with_restarts.restarts = 8;
  Rng rng2(11);
  const OptimizeResult global = multistart_minimize(
      double_well(), std::vector<double>{-1.2}, bounds, with_restarts, rng2);
  EXPECT_NEAR(global.x[0], 2.0, 0.2);  // found the deeper right well
  EXPECT_LT(global.value, local.value);
}

TEST(Multistart, ZeroRestartsNeedsNoBounds) {
  const Objective f = [](std::span<const double> x, std::span<double> grad) {
    if (!grad.empty()) grad[0] = 2.0 * x[0];
    return x[0] * x[0];
  };
  MultistartOptions options;
  options.restarts = 0;
  Rng rng(1);
  const OptimizeResult result =
      multistart_minimize(f, std::vector<double>{3.0}, {}, options, rng);
  EXPECT_NEAR(result.x[0], 0.0, 1e-5);
}

TEST(Multistart, RestartsWithoutBoundsThrow) {
  const Objective f = [](std::span<const double> x, std::span<double> grad) {
    if (!grad.empty()) grad[0] = 2.0 * x[0];
    return x[0] * x[0];
  };
  MultistartOptions options;
  options.restarts = 2;
  Rng rng(1);
  EXPECT_THROW(
      multistart_minimize(f, std::vector<double>{1.0}, {}, options, rng),
      std::invalid_argument);
}

TEST(Multistart, NeverWorseThanWarmStartAlone) {
  Bounds bounds;
  bounds.lower = {-3.0};
  bounds.upper = {4.0};
  MultistartOptions base;
  base.restarts = 0;
  MultistartOptions restarted;
  restarted.restarts = 5;

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng r1(seed);
    Rng r2(seed);
    const double v0 = multistart_minimize(double_well(),
                                          std::vector<double>{-2.0}, bounds,
                                          base, r1)
                          .value;
    const double v1 = multistart_minimize(double_well(),
                                          std::vector<double>{-2.0}, bounds,
                                          restarted, r2)
                          .value;
    EXPECT_LE(v1, v0 + 1e-12) << "seed " << seed;
  }
}

}  // namespace
