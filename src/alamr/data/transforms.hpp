#pragma once

// Pre-processing from paper Sec. IV-A:
//  - responses (cost, memory) get a log10 transform, which both evens out
//    prediction quality across the 5.4e3x response range and guarantees
//    positive predictions after exponentiation;
//  - features are min-max scaled to the unit cube [0, 1]^d.

#include <span>
#include <vector>

#include "alamr/linalg/matrix.hpp"

namespace alamr::data {

using linalg::Matrix;

/// Elementwise log10. Throws std::invalid_argument on non-positive input.
std::vector<double> log10_transform(std::span<const double> values);

/// Elementwise 10^v — inverse of log10_transform; output always positive.
std::vector<double> exp10_transform(std::span<const double> values);

/// Per-column feature pre-transform applied BEFORE unit-cube scaling.
///
/// Paper Sec. V-D (first discussion item): processor counts are sampled at
/// 2^2, 2^3, ... — training on log2(p) makes successive values equidistant
/// so one RBF length scale fits the whole axis. kLog10 is provided for
/// axes spanning decades.
enum class ColumnTransform { kIdentity, kLog2, kLog10 };

/// Applies per-column transforms to a design matrix (column count must
/// match the spec length; pass an empty spec for all-identity). Log
/// transforms require positive entries.
Matrix apply_column_transforms(const Matrix& x,
                               std::span<const ColumnTransform> spec);

/// Min-max scaler to [0, 1]^d fitted on a design matrix.
///
/// Constant columns map to 0.5 (rather than dividing by zero), matching
/// the behaviour a practitioner wants when a sweep fixes one parameter.
class FeatureScaler {
 public:
  FeatureScaler() = default;

  /// Learns per-column min/max from `x`.
  static FeatureScaler fit(const Matrix& x);

  /// Maps rows of `x` into the unit cube. Columns seen as constant during
  /// fit map to 0.5; values outside the fitted range extrapolate linearly.
  Matrix transform(const Matrix& x) const;

  /// Inverse map back to original units.
  Matrix inverse_transform(const Matrix& scaled) const;

  std::size_t dim() const noexcept { return mins_.size(); }
  std::span<const double> mins() const noexcept { return mins_; }
  std::span<const double> maxs() const noexcept { return maxs_; }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace alamr::data
