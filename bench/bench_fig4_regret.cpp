// E5 — paper Fig. 4: cumulative regret (CR, Eq. 11) of RGMA trajectories
// for nInit in {1, 50, 100}, against a memory-blind RandGoodness baseline.
// CR counts the node-hours of selected jobs whose ACTUAL memory use meets
// or exceeds L_mem — cycles that a real run would have burned on crashes.
//
// Paper shape: RGMA's CR flattens as the memory model learns; larger
// nInit gives lower CR from the start; the memory-blind baseline keeps
// accumulating regret; RGMA trajectories may terminate early when no
// remaining candidate is predicted safe.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alamr;
  const std::optional<std::string> trace_path = bench::trace_flag(argc, argv);
  const std::optional<core::faults::FaultPlan> fault_plan =
      bench::fault_plan_flag(argc, argv);
  const bench::CheckpointFlags checkpoint = bench::checkpoint_flags(argc, argv);
  core::resilience::Options resilience;
  bench::resilience_flag(argc, argv, resilience);
  bench::print_header(
      "E5: RGMA cumulative regret vs iteration, nInit in {1, 50, 100}",
      "Fig. 4",
      "RGMA CR flattens (learns to avoid violators); larger nInit -> lower "
      "CR; memory-blind baseline grows steadily");

  const data::Dataset dataset = bench::load_dataset();
  const std::size_t n_traj = bench::trajectories(3);
  const std::size_t iterations = 200;

  struct Row {
    std::string label;
    std::vector<core::CurvePoint> cr;
    std::size_t early_stops = 0;
    double mean_length = 0.0;
  };
  std::vector<Row> rows;

  for (const std::size_t n_init : {std::size_t{1}, std::size_t{50},
                                   std::size_t{100}}) {
    core::AlOptions options = bench::al_options(n_init, iterations);
    if (fault_plan) options.failures.plan = *fault_plan;
    options.resilience = resilience;
    const core::AlSimulator simulator(dataset, options);
    const core::Rgma rgma(simulator.memory_limit_log10());
    const core::BatchOptions batch = bench::batch_options(n_traj, 555 + n_init);
    const auto results =
        bench::run_bench_batch(simulator, rgma, batch, checkpoint,
                               "rgma_ninit_" + std::to_string(n_init));
    Row row;
    row.label = "RGMA nInit=" + std::to_string(n_init);
    row.cr = core::aggregate_curve(results, core::Metric::kCumulativeRegret);
    for (const auto& traj : results) {
      if (traj.early_stopped) ++row.early_stops;
      row.mean_length += static_cast<double>(traj.iterations.size());
    }
    if (!results.empty()) {
      row.mean_length /= static_cast<double>(results.size());
    }
    rows.push_back(std::move(row));
  }

  {
    // Memory-blind baseline at the middle nInit.
    core::AlOptions options = bench::al_options(50, iterations);
    if (fault_plan) options.failures.plan = *fault_plan;
    options.resilience = resilience;
    const core::AlSimulator simulator(dataset, options);
    const core::RandGoodness blind;
    const core::BatchOptions batch = bench::batch_options(n_traj, 606);
    const auto results = bench::run_bench_batch(simulator, blind, batch,
                                                checkpoint, "randgoodness");
    Row row;
    row.label = "RandGoodness nInit=50 (memory-blind)";
    row.cr = core::aggregate_curve(results, core::Metric::kCumulativeRegret);
    for (const auto& traj : results) {
      row.mean_length += static_cast<double>(traj.iterations.size());
    }
    if (!results.empty()) {
      row.mean_length /= static_cast<double>(results.size());
    }
    rows.push_back(std::move(row));
  }

  const core::AlSimulator probe(dataset, bench::al_options(1, 1));
  std::printf("\nL_mem = %.2f MB; %zu trajectories per configuration\n",
              probe.memory_limit_mb(), n_traj);

  std::printf("\n%6s", "iter");
  for (const Row& row : rows) std::printf(" %26.26s", row.label.c_str());
  std::printf("\n%6s", "");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::printf(" %26s", "CR mean [min, max] nh");
  }
  std::printf("\n");
  std::size_t longest = 0;
  for (const Row& row : rows) longest = std::max(longest, row.cr.size());
  for (std::size_t i = 0; i < longest; ++i) {
    if ((i + 1) % 20 != 0 && i + 1 != longest && i != 0) continue;
    std::printf("%6zu", i + 1);
    for (const Row& row : rows) {
      if (i < row.cr.size()) {
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%.3f [%.3f, %.3f]", row.cr[i].mean,
                      row.cr[i].lo, row.cr[i].hi);
        std::printf(" %26s", cell);
      } else {
        std::printf(" %26s", "(stopped)");
      }
    }
    std::printf("\n");
  }

  std::printf("\nTrajectory endings:\n");
  for (const Row& row : rows) {
    std::printf("  %-38s mean length %.1f iterations, early stops: %zu/%zu\n",
                row.label.c_str(), row.mean_length, row.early_stops, n_traj);
  }
  bench::finish_trace(trace_path);
  return 0;
}
