file(REMOVE_RECURSE
  "CMakeFiles/amr_campaign.dir/amr_campaign.cpp.o"
  "CMakeFiles/amr_campaign.dir/amr_campaign.cpp.o.d"
  "amr_campaign"
  "amr_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
