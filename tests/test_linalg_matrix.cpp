// Tests for the dense matrix/vector kernels.

#include "alamr/linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::linalg;
using alamr::stats::Rng;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
  EXPECT_THROW((Matrix{{1.0}, {2.0, 3.0}}), std::invalid_argument);
}

TEST(Matrix, RowSpanIsContiguousView) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  auto r1 = m.row(1);
  r1[0] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
}

TEST(Matrix, IdentityAndTranspose) {
  const Matrix eye = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 2), 0.0);

  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(VectorKernels, DotNormAxpy) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3.0, 4.0}), 5.0);

  std::vector<double> z{1.0, 1.0, 1.0};
  axpy(2.0, x, z);
  EXPECT_DOUBLE_EQ(z[2], 7.0);

  EXPECT_THROW(dot(x, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(VectorKernels, SquaredDistance) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, a), 0.0);
}

TEST(MatVec, KnownProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<double> x{1.0, -1.0};
  const Vector y = matvec(a, x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);

  const Vector yt = matvec_transposed(a, std::vector<double>{1.0, 1.0, 1.0});
  ASSERT_EQ(yt.size(), 2u);
  EXPECT_DOUBLE_EQ(yt[0], 9.0);
  EXPECT_DOUBLE_EQ(yt[1], 12.0);
}

TEST(MatMul, IdentityIsNeutral) {
  Rng rng(1);
  const Matrix a = random_matrix(4, 4, rng);
  const Matrix prod = matmul(a, Matrix::identity(4));
  EXPECT_LT(max_abs_diff(prod, a), 1e-14);
}

TEST(MatMul, KnownProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(MatMul, ShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Aat, SymmetricAndMatchesMatmul) {
  Rng rng(2);
  const Matrix a = random_matrix(5, 3, rng);
  const Matrix s = aat(a);
  const Matrix reference = matmul(a, a.transposed());
  EXPECT_LT(max_abs_diff(s, reference), 1e-12);
  for (std::size_t i = 0; i < s.rows(); ++i) {
    for (std::size_t j = 0; j < s.cols(); ++j) {
      EXPECT_DOUBLE_EQ(s(i, j), s(j, i));
    }
  }
}

TEST(FrobeniusInner, MatchesElementwiseSum) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_DOUBLE_EQ(frobenius_inner(a, b), 5.0 + 12.0 + 21.0 + 32.0);
}

// Property: (AB)x == A(Bx) for random matrices.
class MatmulAssociativity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatmulAssociativity, MatvecComposition) {
  Rng rng(GetParam());
  const std::size_t m = 2 + rng.uniform_index(6);
  const std::size_t k = 2 + rng.uniform_index(6);
  const std::size_t n = 2 + rng.uniform_index(6);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  std::vector<double> x(n);
  for (double& v : x) v = rng.uniform(-2.0, 2.0);

  const Vector lhs = matvec(matmul(a, b), x);
  const Vector rhs = matvec(a, matvec(b, x));
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_NEAR(lhs[i], rhs[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatmulAssociativity,
                         ::testing::Values(3ULL, 17ULL, 23ULL, 5151ULL, 909ULL));

}  // namespace
