file(REMOVE_RECURSE
  "libalamr_opt.a"
)
