#pragma once

// Explicitly vectorized hot-loop kernels (DESIGN.md §10).
//
// The default build keeps the strictly-sequential scalar kernels in
// matrix.hpp so every accumulation is a single ascending IEEE chain and
// the golden trajectories stay byte-for-byte reproducible. Configuring
// with -DALAMR_SIMD=ON reroutes dot / squared_distance (reductions) and
// axpy / rank-1 updates (elementwise) through these kernels instead:
//
//  - reductions run four independent accumulator chains (i, i+1, i+2,
//    i+3 interleaved) combined pairwise at the end, which is the shape
//    compilers turn into 256-bit FMA vector code;
//  - every multiply-add goes through fmadd(), which is a fused
//    std::fma when the target has hardware FMA (-mfma, set by the CMake
//    option) and an unfused mul+add otherwise.
//
// Numerics contract: results differ from the scalar kernels only by
// reassociation of the reduction order and by fusion of the rounding
// step in multiply-adds — both backward-stable, no change to magnitude
// of the error bound beyond small-constant factors. End-to-end this is
// validated by the tolerance-based golden comparison (tests_golden,
// GoldenTrajectoryTolerance) and a dedicated scripts/check.sh leg; the
// byte-for-byte goldens are skipped under ALAMR_SIMD by design.
//
// This header is freestanding (no matrix.hpp dependency) so the kernels
// stay testable in both build modes: matrix.hpp dispatches to them only
// under ALAMR_SIMD, but the symbols always exist.

#include <cmath>
#include <cstddef>

namespace alamr::linalg::simd {

/// Fused multiply-add a*b + c when the target has hardware FMA; plain
/// mul+add otherwise (std::fma without hardware support is a slow
/// libm soft-float path, which would defeat the point).
inline double fmadd(double a, double b, double c) {
#if defined(__FMA__)
  return std::fma(a, b, c);
#else
  return a * b + c;
#endif
}

/// Inner product with four independent accumulator chains.
inline double dot(const double* x, const double* y, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 = fmadd(x[i + 0], y[i + 0], a0);
    a1 = fmadd(x[i + 1], y[i + 1], a1);
    a2 = fmadd(x[i + 2], y[i + 2], a2);
    a3 = fmadd(x[i + 3], y[i + 3], a3);
  }
  double tail = 0.0;
  for (; i < n; ++i) tail = fmadd(x[i], y[i], tail);
  return ((a0 + a1) + (a2 + a3)) + tail;
}

/// Squared Euclidean distance with four independent accumulator chains.
inline double squared_distance(const double* x, const double* y,
                               std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = x[i + 0] - y[i + 0];
    const double d1 = x[i + 1] - y[i + 1];
    const double d2 = x[i + 2] - y[i + 2];
    const double d3 = x[i + 3] - y[i + 3];
    a0 = fmadd(d0, d0, a0);
    a1 = fmadd(d1, d1, a1);
    a2 = fmadd(d2, d2, a2);
    a3 = fmadd(d3, d3, a3);
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    tail = fmadd(d, d, tail);
  }
  return ((a0 + a1) + (a2 + a3)) + tail;
}

/// y += alpha * x. Elementwise (no reduction), so the only numeric
/// difference from the scalar kernel is the fused rounding; unrolled by
/// four to keep independent FMA chains in flight.
inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i + 0] = fmadd(alpha, x[i + 0], y[i + 0]);
    y[i + 1] = fmadd(alpha, x[i + 1], y[i + 1]);
    y[i + 2] = fmadd(alpha, x[i + 2], y[i + 2]);
    y[i + 3] = fmadd(alpha, x[i + 3], y[i + 3]);
  }
  for (; i < n; ++i) y[i] = fmadd(alpha, x[i], y[i]);
}

/// y -= alpha * x (the rank-1 update inside triangular solves and the
/// Cholesky trailing update), as a single fused negative-multiply-add
/// per element.
inline void rank1_sub(double alpha, const double* x, double* y,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i + 0] = fmadd(-alpha, x[i + 0], y[i + 0]);
    y[i + 1] = fmadd(-alpha, x[i + 1], y[i + 1]);
    y[i + 2] = fmadd(-alpha, x[i + 2], y[i + 2]);
    y[i + 3] = fmadd(-alpha, x[i + 3], y[i + 3]);
  }
  for (; i < n; ++i) y[i] = fmadd(-alpha, x[i], y[i]);
}

}  // namespace alamr::linalg::simd
