// Golden-trajectory regression test: a fixed-seed 50-iteration RGMA run,
// serialized with trajectory_to_csv, compared byte-for-byte against a
// checked-in reference. This locks in the repo's determinism contract —
// the trajectory must be bit-identical whatever the thread count and
// whether the incremental-refit fast path or the full O(n^3) rebuild
// produced each posterior.
//
// To regenerate after an INTENTIONAL numerics change:
//   ALAMR_REGEN_GOLDEN=1 ./build/tests/tests_golden
// and commit the updated tests/golden/rgma_seed2024.csv with an
// explanation of why the trajectory moved.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "alamr/core/export.hpp"
#include "alamr/core/parallel.hpp"
#include "alamr/core/simulator.hpp"
#include "alamr/core/strategies.hpp"
#include "synthetic_dataset.hpp"

namespace {

using namespace alamr;
using namespace alamr::core;

constexpr std::size_t kIterations = 50;

const std::filesystem::path kGoldenPath =
    std::filesystem::path(ALAMR_GOLDEN_DIR) / "rgma_seed2024.csv";

/// The one configuration the golden file pins down. Everything is seeded;
/// nothing reads the environment.
AlOptions golden_options() {
  AlOptions options;
  options.n_test = 60;
  options.n_init = 25;
  options.max_iterations = kIterations;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 40;
  options.refit.restarts = 0;
  options.refit.max_opt_iterations = 4;
  return options;
}

std::string golden_csv(std::size_t threads, bool incremental_refit,
                       bool incremental_cross = true,
                       bool use_distance_cache = true) {
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(320, 2024);
  AlOptions options = golden_options();
  options.incremental_refit = incremental_refit;
  options.incremental_cross = incremental_cross;
  options.initial_fit.use_distance_cache = use_distance_cache;
  options.refit.use_distance_cache = use_distance_cache;
  const AlSimulator simulator(dataset, options);
  const Rgma rgma(simulator.memory_limit_log10());

  stats::Rng partition_rng(11);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);

  set_global_parallel_threads(threads);
  stats::Rng rng(2024);
  const TrajectoryResult result =
      simulator.run_with_partition(rgma, partition, rng);
  set_global_parallel_threads(0);  // restore the configured default

  EXPECT_EQ(result.iterations.size(), kIterations)
      << "stop_reason=" << static_cast<int>(result.stop_reason);
  return trajectory_to_csv(result);
}

std::string read_golden_file() {
  std::ifstream in(kGoldenPath, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden file " << kGoldenPath;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool regenerating() {
  const char* env = std::getenv("ALAMR_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(GoldenTrajectory, SingleThreadIncrementalMatchesGolden) {
  const std::string csv = golden_csv(1, true);
  if (regenerating()) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << kGoldenPath;
    out << csv;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }
  EXPECT_EQ(csv, read_golden_file());
}

TEST(GoldenTrajectory, FourThreadsMatchesGolden) {
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(4, true), read_golden_file());
}

TEST(GoldenTrajectory, FullRefitMatchesGolden) {
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(1, false), read_golden_file());
}

TEST(GoldenTrajectory, FourThreadsFullRefitMatchesGolden) {
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(4, false), read_golden_file());
}

// The incremental cross-covariance path (AlOptions::incremental_cross)
// erases/appends K(X_train, X_active) columns in place instead of
// rebuilding the matrix each iteration. Both settings must reproduce the
// same bytes — with and without the incremental-refit fast path, and
// under a parallel predict phase.

TEST(GoldenTrajectory, RebuiltCrossCovarianceMatchesGolden) {
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(1, true, /*incremental_cross=*/false),
            read_golden_file());
}

TEST(GoldenTrajectory, RebuiltCrossCovarianceFullRefitMatchesGolden) {
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(1, false, /*incremental_cross=*/false),
            read_golden_file());
}

TEST(GoldenTrajectory, FourThreadsRebuiltCrossCovarianceMatchesGolden) {
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(4, true, /*incremental_cross=*/false),
            read_golden_file());
}

// GprOptions::use_distance_cache = false bypasses the PairwiseDistances
// cache entirely: every optimizer probe and posterior rebuild takes the
// direct-gram path. The cached transforms are constructed to replay the
// direct path's FP sequence, so the bytes must not move.

TEST(GoldenTrajectory, NoDistanceCacheMatchesGolden) {
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(1, true, /*incremental_cross=*/true,
                       /*use_distance_cache=*/false),
            read_golden_file());
}

TEST(GoldenTrajectory, NoCachesAtAllMatchesGolden) {
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(1, false, /*incremental_cross=*/false,
                       /*use_distance_cache=*/false),
            read_golden_file());
}

}  // namespace
