file(REMOVE_RECURSE
  "CMakeFiles/alamr_amr.dir/campaign.cpp.o"
  "CMakeFiles/alamr_amr.dir/campaign.cpp.o.d"
  "CMakeFiles/alamr_amr.dir/euler.cpp.o"
  "CMakeFiles/alamr_amr.dir/euler.cpp.o.d"
  "CMakeFiles/alamr_amr.dir/geometry.cpp.o"
  "CMakeFiles/alamr_amr.dir/geometry.cpp.o.d"
  "CMakeFiles/alamr_amr.dir/machine.cpp.o"
  "CMakeFiles/alamr_amr.dir/machine.cpp.o.d"
  "CMakeFiles/alamr_amr.dir/mesh.cpp.o"
  "CMakeFiles/alamr_amr.dir/mesh.cpp.o.d"
  "CMakeFiles/alamr_amr.dir/patch.cpp.o"
  "CMakeFiles/alamr_amr.dir/patch.cpp.o.d"
  "CMakeFiles/alamr_amr.dir/problem.cpp.o"
  "CMakeFiles/alamr_amr.dir/problem.cpp.o.d"
  "CMakeFiles/alamr_amr.dir/render.cpp.o"
  "CMakeFiles/alamr_amr.dir/render.cpp.o.d"
  "CMakeFiles/alamr_amr.dir/solver.cpp.o"
  "CMakeFiles/alamr_amr.dir/solver.cpp.o.d"
  "libalamr_amr.a"
  "libalamr_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alamr_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
