#include "alamr/opt/objective.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace alamr::opt {

std::vector<double> finite_difference_gradient(const Objective& f,
                                               std::span<const double> x,
                                               double step) {
  std::vector<double> grad(x.size());
  std::vector<double> probe(x.begin(), x.end());
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Scale the step with the coordinate magnitude for better conditioning.
    const double h = step * std::max(1.0, std::abs(x[i]));
    probe[i] = x[i] + h;
    const double plus = f(probe, {});
    probe[i] = x[i] - h;
    const double minus = f(probe, {});
    probe[i] = x[i];
    grad[i] = (plus - minus) / (2.0 * h);
  }
  return grad;
}

void Bounds::project(std::span<double> x) const {
  if (!lower.empty()) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::max(x[i], lower[i]);
  }
  if (!upper.empty()) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::min(x[i], upper[i]);
  }
}

void Bounds::validate(std::size_t dim) const {
  if (!lower.empty() && lower.size() != dim) {
    throw std::invalid_argument("Bounds: lower size mismatch");
  }
  if (!upper.empty() && upper.size() != dim) {
    throw std::invalid_argument("Bounds: upper size mismatch");
  }
  if (!lower.empty() && !upper.empty()) {
    for (std::size_t i = 0; i < dim; ++i) {
      if (lower[i] > upper[i]) {
        throw std::invalid_argument("Bounds: lower exceeds upper");
      }
    }
  }
}

}  // namespace alamr::opt
