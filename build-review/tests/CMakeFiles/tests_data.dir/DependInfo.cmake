
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_data_csv.cpp" "tests/CMakeFiles/tests_data.dir/test_data_csv.cpp.o" "gcc" "tests/CMakeFiles/tests_data.dir/test_data_csv.cpp.o.d"
  "/root/repo/tests/test_data_dataset.cpp" "tests/CMakeFiles/tests_data.dir/test_data_dataset.cpp.o" "gcc" "tests/CMakeFiles/tests_data.dir/test_data_dataset.cpp.o.d"
  "/root/repo/tests/test_data_partition.cpp" "tests/CMakeFiles/tests_data.dir/test_data_partition.cpp.o" "gcc" "tests/CMakeFiles/tests_data.dir/test_data_partition.cpp.o.d"
  "/root/repo/tests/test_data_transforms.cpp" "tests/CMakeFiles/tests_data.dir/test_data_transforms.cpp.o" "gcc" "tests/CMakeFiles/tests_data.dir/test_data_transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/data/CMakeFiles/alamr_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/alamr_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/alamr_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
