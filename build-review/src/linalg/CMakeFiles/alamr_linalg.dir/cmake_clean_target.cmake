file(REMOVE_RECURSE
  "libalamr_linalg.a"
)
