#pragma once

// Runtime-dispatched hot-loop kernels (DESIGN.md §10-§11).
//
// One binary carries three implementations of the innermost linalg
// kernels — dot / squared_distance (reductions), axpy / rank1_sub
// (elementwise multiply-adds) — compiled in dedicated translation units
// with per-TU target options:
//
//  - scalar  : strictly-sequential single-chain IEEE loops, byte-identical
//              to the historical inline kernels in matrix.hpp (the seed
//              recipe). This is the level the byte-for-byte golden
//              trajectories pin.
//  - avx2    : four independent accumulator chains combined pairwise, with
//              fused multiply-adds (std::fma compiles to vfmadd under the
//              TU's -march=x86-64-v3). The shape GCC turns into 256-bit
//              FMA vector code.
//  - avx512  : the same recipe widened to eight chains for 512-bit
//              registers (-march=x86-64-v4).
//
// The active implementation is a function-pointer table selected once at
// startup: CPUID (__builtin_cpu_supports) picks the best level the host
// executes, and the ALAMR_SIMD_LEVEL environment variable
// (scalar|avx2|avx512) overrides it — requests above the host's ceiling
// clamp down, so "ALAMR_SIMD_LEVEL=avx512 ctest" is safe on any machine.
// Tests switch levels directly with set_level().
//
// Numerics contract: the vector levels differ from scalar only by
// reassociation of the reduction order (pairwise chain combine) and by
// fusion of the multiply-add rounding step — both backward-stable. Per
// kernel the levels agree within rel 1e-12 (test_linalg_simd.cpp); a whole
// 50-iteration trajectory compounds to ~1e-7, bounded at 1e-6 by the
// tolerance golden comparison. Byte goldens force Level::kScalar for the
// duration of the run, so they pass whatever level the process started at.
//
// Thread safety: table() and active_level() are single relaxed atomic
// loads, safe from any thread. set_level() is intended for startup and
// test setup; switching while kernels are in flight is race-free but a
// caller observing mid-switch may mix levels across calls.

#include <atomic>
#include <cmath>
#include <cstddef>
#include <string>

namespace alamr::linalg::simd {

/// Kernel implementation tiers, ordered by width. Values are stable (used
/// in fingerprints and bench context blocks via to_string).
enum class Level { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// "scalar" | "avx2" | "avx512".
const char* to_string(Level level) noexcept;

/// The dispatch table: one function pointer per hot kernel.
struct KernelTable {
  double (*dot)(const double* x, const double* y, std::size_t n);
  double (*squared_distance)(const double* x, const double* y, std::size_t n);
  void (*axpy)(double alpha, const double* x, double* y, std::size_t n);
  void (*rank1_sub)(double alpha, const double* x, double* y, std::size_t n);
};

namespace detail {
// Scalar table: defined in simd_scalar.cpp, constant-initialized, and the
// constinit default for g_active — a call reaching the kernels before the
// dispatch initializer runs (static-init order) safely gets scalar.
extern const KernelTable kScalarTable;
extern std::atomic<const KernelTable*> g_active;
extern std::atomic<Level> g_level;
}  // namespace detail

/// The active kernel table (one relaxed atomic load).
inline const KernelTable& table() noexcept {
  return *detail::g_active.load(std::memory_order_relaxed);
}

/// The level table() currently dispatches to.
inline Level active_level() noexcept {
  return detail::g_level.load(std::memory_order_relaxed);
}

/// Best level this host can execute AND this binary carries (a build
/// whose compiler lacks the target options ships scalar-only).
Level max_supported_level() noexcept;

/// Switches the active table. Returns false (and changes nothing) when
/// the level exceeds max_supported_level().
bool set_level(Level level) noexcept;

/// Comma-separated CPU feature flags relevant to the dispatch decision
/// (e.g. "sse2,avx,avx2,fma,avx512f,avx512vl"), for bench context blocks
/// and trace fingerprints. Empty on non-x86 hosts.
std::string cpu_features() noexcept;

/// REDUCTION calls (dot, squared_distance) below this length use the
/// caller-inlined sequential loop instead of an indirect call through the
/// table: feature-dimension work (d ~ 5) never pays dispatch overhead,
/// and because the scalar table entries are bit-identical to the inline
/// loops the threshold cannot change scalar-level results. The
/// elementwise kernels (axpy, rank1_sub) deliberately take NO threshold —
/// their per-element bits must depend only on the dispatch level so that
/// splitting a call into arbitrary sub-ranges (as the thread-chunked
/// blocked solves do) never changes results (see matrix.hpp).
inline constexpr std::size_t kDispatchMin = 16;

/// Fused multiply-add a*b + c when the INCLUDING translation unit is
/// compiled with hardware FMA; plain mul+add otherwise (std::fma without
/// hardware support is a slow libm soft-float path). The kernel TUs use
/// their own internal copy compiled under their target options; this one
/// exists for tests and ad-hoc callers.
inline double fmadd(double a, double b, double c) {
#if defined(__FMA__)
  return std::fma(a, b, c);
#else
  return a * b + c;
#endif
}

/// Convenience wrappers over the active table (always dispatch, no
/// kDispatchMin threshold — threshold logic lives in the matrix.hpp
/// span kernels).
inline double dot(const double* x, const double* y, std::size_t n) {
  return table().dot(x, y, n);
}
inline double squared_distance(const double* x, const double* y,
                               std::size_t n) {
  return table().squared_distance(x, y, n);
}
inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  table().axpy(alpha, x, y, n);
}
inline void rank1_sub(double alpha, const double* x, double* y,
                      std::size_t n) {
  table().rank1_sub(alpha, x, y, n);
}

}  // namespace alamr::linalg::simd
