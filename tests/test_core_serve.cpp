// Multi-tenant session engine (DESIGN.md §15): byte-identity of the
// batched engine against serial OnlineAlDriver runs, batched-vs-serial
// arm parity at serving strides, evict/restore round-trips, degradation
// isolation between co-hosted tenants, the request-protocol contract,
// and concurrent shard traffic (the TSan target).

#include "alamr/core/serve.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <thread>
#include <vector>

#include "alamr/core/online.hpp"

namespace {

using namespace alamr::core;
using alamr::linalg::Matrix;
using alamr::stats::Rng;

/// Synthetic 2-D oracle: cost grows exponentially along x0, memory along
/// x1. Deterministic, positive — the engine's client runs this between
/// suggest and observe.
std::pair<double, double> synthetic_oracle(std::span<const double> f) {
  const double cost = 0.01 * std::pow(10.0, 2.0 * f[0]);
  const double memory = 0.5 * std::pow(10.0, 1.5 * f[1]);
  return {cost, memory};
}

Matrix unit_grid(std::size_t per_axis) {
  Matrix grid(per_axis * per_axis, 2);
  for (std::size_t i = 0; i < per_axis; ++i) {
    for (std::size_t j = 0; j < per_axis; ++j) {
      grid(i * per_axis + j, 0) =
          static_cast<double>(i) / static_cast<double>(per_axis - 1);
      grid(i * per_axis + j, 1) =
          static_cast<double>(j) / static_cast<double>(per_axis - 1);
    }
  }
  return grid;
}

OnlineAlOptions fast_al(std::size_t n_init = 2, std::size_t iters = 6) {
  OnlineAlOptions options;
  options.n_init = n_init;
  options.iterations = iters;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 10;
  options.refit.max_opt_iterations = 4;
  return options;
}

SessionOptions session_options(std::uint64_t seed, std::size_t stride = 1) {
  SessionOptions options;
  options.al = fast_al();
  options.seed = seed;
  options.retrain_stride = stride;
  return options;
}

/// Drives one session to completion on the calling thread (the
/// per-session-serial protocol).
void drive_sync(SessionEngine& engine, SessionId id) {
  for (;;) {
    const Suggestion s = engine.suggest(id);
    if (s.done) return;
    const auto [cost, memory] = synthetic_oracle(s.features);
    engine.observe(id, cost, memory);
  }
}

/// Drives every session through the queued protocol in lockstep rounds,
/// so each drain coalesces the whole tenant set's suggest work.
void drive_batched(SessionEngine& engine, const std::vector<SessionId>& ids) {
  std::vector<char> done(ids.size(), 0);
  for (;;) {
    bool any = false;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (!done[i]) {
        engine.enqueue_suggest(ids[i]);
        any = true;
      }
    }
    if (!any) return;
    engine.drain();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (done[i]) continue;
      const std::optional<Suggestion> s = engine.take_suggestion(ids[i]);
      ASSERT_TRUE(s.has_value());
      if (s->done) {
        done[i] = 1;
        continue;
      }
      const auto [cost, memory] = synthetic_oracle(s->features);
      engine.enqueue_observe(ids[i], cost, memory);
    }
    engine.drain();
  }
}

void expect_same_records(const std::vector<OnlineRecord>& a,
                         const std::vector<OnlineRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].grid_row, b[i].grid_row) << "record " << i;
    EXPECT_EQ(a[i].cost, b[i].cost) << "record " << i;
    EXPECT_EQ(a[i].memory, b[i].memory) << "record " << i;
    EXPECT_EQ(a[i].predicted_cost_log10, b[i].predicted_cost_log10)
        << "record " << i;
    EXPECT_EQ(a[i].predicted_mem_log10, b[i].predicted_mem_log10)
        << "record " << i;
    EXPECT_EQ(a[i].cumulative_cost, b[i].cumulative_cost) << "record " << i;
    EXPECT_EQ(a[i].cumulative_regret, b[i].cumulative_regret)
        << "record " << i;
    EXPECT_EQ(a[i].initial_phase, b[i].initial_phase) << "record " << i;
  }
}

/// Bitwise posterior comparison of two finished runs over the scaled grid.
void expect_same_posterior(const OnlineResult& a, const OnlineResult& b,
                           const Matrix& grid) {
  const auto scaler = alamr::data::FeatureScaler::fit(grid);
  const Matrix xs = scaler.transform(grid);
  const auto pca = a.cost_model->predict(xs);
  const auto pcb = b.cost_model->predict(xs);
  const auto pma = a.memory_model->predict(xs);
  const auto pmb = b.memory_model->predict(xs);
  ASSERT_EQ(pca.mean.size(), pcb.mean.size());
  for (std::size_t i = 0; i < pca.mean.size(); ++i) {
    EXPECT_EQ(pca.mean[i], pcb.mean[i]) << "cost mean " << i;
    EXPECT_EQ(pca.stddev[i], pcb.stddev[i]) << "cost stddev " << i;
    EXPECT_EQ(pma.mean[i], pmb.mean[i]) << "mem mean " << i;
    EXPECT_EQ(pma.stddev[i], pmb.stddev[i]) << "mem stddev " << i;
  }
}

// At retrain_stride == 1 a session IS the OnlineAlDriver recipe: the
// batched engine (coalesced sweeps, off-path retrains) and the serial
// convenience path must both reproduce N independent driver runs bit for
// bit. The same suite runs under ALAMR_THREADS=1 and =4 (ctest).
TEST(ServeEngine, MatchesSerialDriversAtStride1) {
  const Matrix grid = unit_grid(5);
  const std::vector<std::uint64_t> seeds{11, 22, 33};
  const RandUniform rand_uniform;
  const MaxSigma max_sigma;
  std::vector<const Strategy*> strategies{&rand_uniform, &max_sigma,
                                          &rand_uniform};

  std::vector<OnlineResult> reference;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    OnlineAlDriver driver(
        grid, [](std::span<const double> f) { return synthetic_oracle(f); },
        fast_al());
    Rng rng(seeds[i]);
    reference.push_back(driver.run(*strategies[i], rng));
  }

  {
    SessionEngine engine({.shards = 4, .retrain_workers = 2});
    std::vector<SessionId> ids;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      ids.push_back(i + 1);
      engine.open_session(ids.back(), grid, *strategies[i],
                          session_options(seeds[i]));
    }
    drive_batched(engine, ids);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const OnlineResult got = engine.finish_session(ids[i]);
      expect_same_records(reference[i].records, got.records);
      EXPECT_EQ(reference[i].oracle_giveups, got.oracle_giveups);
      EXPECT_EQ(reference[i].exhausted_safe_candidates,
                got.exhausted_safe_candidates);
      expect_same_posterior(reference[i], got, grid);
    }
  }

  {
    SessionEngine engine({.retrain_workers = 0, .coalesce = false});
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      engine.open_session(i + 1, grid, *strategies[i],
                          session_options(seeds[i]));
      drive_sync(engine, i + 1);
      const OnlineResult got = engine.finish_session(i + 1);
      expect_same_records(reference[i].records, got.records);
      expect_same_posterior(reference[i], got, grid);
    }
  }
}

// The two bench arms — batched (coalesce on, off-path retrains, queued
// protocol) vs per-session-serial (coalesce off, inline retrains, sync
// protocol) — must produce byte-identical per-session outputs at a
// serving stride, differing only in the cost of producing them.
TEST(ServeEngine, BatchedArmMatchesSerialArmAtStride) {
  const Matrix grid = unit_grid(5);
  const std::vector<std::uint64_t> seeds{5, 6, 7, 8};
  const MaxSigma strategy;
  constexpr std::size_t kStride = 3;

  SessionEngine batched({.shards = 4, .retrain_workers = 2});
  SessionEngine serial({.retrain_workers = 0, .coalesce = false});
  std::vector<SessionId> ids;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    ids.push_back(i + 1);
    batched.open_session(ids.back(), grid, strategy,
                         session_options(seeds[i], kStride));
    serial.open_session(ids.back(), grid, strategy,
                        session_options(seeds[i], kStride));
  }
  drive_batched(batched, ids);
  for (const SessionId id : ids) drive_sync(serial, id);
  for (const SessionId id : ids) {
    const OnlineResult a = batched.finish_session(id);
    const OnlineResult b = serial.finish_session(id);
    expect_same_records(a.records, b.records);
    expect_same_posterior(a, b, grid);
  }
}

// Evict-to-disk then restore-by-id mid-run must continue the trajectory
// byte-identically to the uninterrupted session — including the stride
// phase of the retrain schedule, which is re-derived from the records.
TEST(ServeEvictRestore, MidRunByteIdentity) {
  const Matrix grid = unit_grid(5);
  const MaxSigma strategy;
  constexpr std::uint64_t kSeed = 99;
  constexpr std::size_t kStride = 2;

  SessionEngine reference_engine({.retrain_workers = 1});
  reference_engine.open_session(1, grid, strategy,
                                session_options(kSeed, kStride));
  drive_sync(reference_engine, 1);
  const OnlineResult reference = reference_engine.finish_session(1);

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "alamr_serve_evict";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  SessionOptions options = session_options(kSeed, kStride);
  options.checkpoint = dir / "tenant1.ck";

  SessionEngine engine({.retrain_workers = 1});
  engine.open_session(1, grid, strategy, options);
  for (int step = 0; step < 4; ++step) {
    const Suggestion s = engine.suggest(1);
    ASSERT_FALSE(s.done);
    const auto [cost, memory] = synthetic_oracle(s.features);
    engine.observe(1, cost, memory);
  }
  engine.evict_session(1);
  EXPECT_EQ(engine.session_count(), 0u);
  EXPECT_THROW(engine.suggest(1), std::invalid_argument);

  engine.restore_session(1, grid, strategy, options);
  drive_sync(engine, 1);
  const OnlineResult resumed = engine.finish_session(1);
  expect_same_records(reference.records, resumed.records);
  expect_same_posterior(reference, resumed, grid);
  std::filesystem::remove_all(dir);
}

// A tenant whose fault plan keeps firing cholesky.non_psd degrades down
// its own ladder; co-hosted tenants stay healthy and their trajectories
// are byte-identical to running them alone.
TEST(ServeDegradeIsolation, ArmedTenantDoesNotPerturbNeighbors) {
  const Matrix grid = unit_grid(5);
  const MaxSigma strategy;

  SessionOptions armed = session_options(50);
  armed.al.plan = faults::FaultPlan::parse("seed=7;cholesky.non_psd:p=1");

  SessionEngine engine({.shards = 2, .retrain_workers = 2});
  engine.open_session(1, grid, strategy, session_options(40));
  engine.open_session(2, grid, strategy, armed);
  engine.open_session(3, grid, strategy, session_options(60));
  drive_batched(engine, {1, 2, 3});

  const SessionStatus mid = engine.status(2);
  EXPECT_NE(mid.cost_health, resilience::Health::kHealthy);
  EXPECT_NE(mid.cost_active, alamr::gp::BackendKind::kExact);
  EXPECT_EQ(engine.status(1).cost_health, resilience::Health::kHealthy);
  EXPECT_EQ(engine.status(3).cost_health, resilience::Health::kHealthy);

  const OnlineResult left = engine.finish_session(1);
  const OnlineResult right = engine.finish_session(3);
  for (const std::uint64_t seed : {std::uint64_t{40}, std::uint64_t{60}}) {
    SessionEngine solo({.retrain_workers = 1});
    solo.open_session(9, grid, strategy, session_options(seed));
    drive_sync(solo, 9);
    const OnlineResult alone = solo.finish_session(9);
    const OnlineResult& together = seed == 40 ? left : right;
    expect_same_records(alone.records, together.records);
  }
}

// The request protocol's contract errors: they must throw
// OnlineContractError (or invalid_argument for unknown ids) without
// corrupting the session.
TEST(ServeEngine, ProtocolContractViolationsThrow) {
  const Matrix grid = unit_grid(4);
  const RandUniform strategy;
  SessionEngine engine({.retrain_workers = 0});

  EXPECT_THROW(engine.suggest(7), std::invalid_argument);
  EXPECT_THROW(engine.enqueue_suggest(7), std::invalid_argument);

  engine.open_session(1, grid, strategy, session_options(3));
  EXPECT_THROW(engine.open_session(1, grid, strategy, session_options(3)),
               OnlineContractError);
  EXPECT_THROW(engine.observe(1, 1.0, 1.0), OnlineContractError);
  EXPECT_THROW(engine.observe_failure(1), OnlineContractError);
  EXPECT_THROW(engine.checkpoint_session(1), OnlineContractError);

  const Suggestion s = engine.suggest(1);
  ASSERT_FALSE(s.done);
  EXPECT_THROW(engine.suggest(1), OnlineContractError);
  EXPECT_THROW(engine.observe(1, 0.0, 1.0), OnlineContractError);
  EXPECT_THROW(engine.observe(1, 1.0, -2.0), OnlineContractError);
  engine.observe(1, 1.0, 1.0);  // the session survives the bad reports

  engine.open_session(2, grid, strategy, session_options(4));
  EXPECT_THROW(engine.query_posterior(2, grid), OnlineContractError);

  EXPECT_TRUE(engine.status(1).records == 1);
  engine.close_session(1);
  engine.close_session(2);
  EXPECT_EQ(engine.session_count(), 0u);
}

// An abandoned suggestion (observe_failure) is dropped exactly like a
// driver oracle give-up: censored from the pool, counted, and the run
// continues.
TEST(ServeEngine, ObserveFailureCensorsCandidate) {
  const Matrix grid = unit_grid(4);
  const RandUniform strategy;
  SessionEngine engine({.retrain_workers = 1});
  engine.open_session(1, grid, strategy, session_options(12));

  bool failed_one = false;
  for (;;) {
    const Suggestion s = engine.suggest(1);
    if (s.done) break;
    if (!failed_one && !s.initial_phase) {
      failed_one = true;
      engine.observe_failure(1);
      continue;
    }
    const auto [cost, memory] = synthetic_oracle(s.features);
    engine.observe(1, cost, memory);
  }
  const SessionStatus status = engine.status(1);
  EXPECT_EQ(status.oracle_giveups, 1u);
  const OnlineResult result = engine.finish_session(1);
  EXPECT_EQ(result.oracle_giveups, 1u);
  // One AL iteration was consumed by the failure, so one fewer record.
  EXPECT_EQ(result.records.size(),
            session_options(12).al.n_init + session_options(12).al.iterations -
                1);
}

// Posterior queries ride the drain sweep and serve the session's current
// epoch; trace counters expose the coalescing and the retrain swaps.
TEST(ServeEngine, QueriesTraceCountersAndEpochs) {
  const bool was_enabled = trace::enabled();
  trace::set_enabled(true);
  const Matrix grid = unit_grid(4);
  const RandUniform strategy;
  SessionEngine engine({.shards = 2, .retrain_workers = 1});
  engine.open_session(1, grid, strategy, session_options(21));
  engine.open_session(2, grid, strategy, session_options(31));

  trace::TraceCollector outer;
  {
    trace::ScopedCollector scope(outer);
    drive_batched(engine, {1, 2});
    engine.enqueue_query(1, grid);
    engine.enqueue_query(2, grid);
    engine.drain();
  }
  const std::optional<QueryResult> q1 = engine.take_query_result(1);
  const std::optional<QueryResult> q2 = engine.take_query_result(2);
  ASSERT_TRUE(q1.has_value());
  ASSERT_TRUE(q2.has_value());
  EXPECT_EQ(q1->cost.mean.size(), grid.rows());
  for (const double v : q1->cost.stddev) EXPECT_GE(v, 0.0);
  EXPECT_FALSE(engine.take_query_result(1).has_value());

  const trace::TraceReport report = outer.report();
  EXPECT_GT(report.counter("serve.batched_sweeps"), 0u);
  EXPECT_GT(report.counter("serve.coalesce_width"),
            report.counter("serve.batched_sweeps"));

  const trace::TraceReport session = engine.session_trace(1);
  EXPECT_GT(session.counter("serve.requests"), 0u);
  EXPECT_GT(session.counter("serve.retrain_swaps"), 0u);
  EXPECT_GT(engine.status(1).epoch, 0u);
  trace::set_enabled(was_enabled);
}

// Sharing one immutable GridContext between tenants on a bit-identical
// grid changes nothing observable.
TEST(ServeEngine, SharedGridContextIsByteInvisible) {
  const Matrix grid = unit_grid(5);
  const MaxSigma strategy;
  std::vector<OnlineResult> results;
  for (const bool share : {true, false}) {
    SessionEngine engine({.retrain_workers = 1, .share_grid_context = share});
    engine.open_session(1, grid, strategy, session_options(77));
    engine.open_session(2, grid, strategy, session_options(78));
    drive_batched(engine, {1, 2});
    results.push_back(engine.finish_session(1));
    results.push_back(engine.finish_session(2));
  }
  expect_same_records(results[0].records, results[2].records);
  expect_same_records(results[1].records, results[3].records);
}

// Concurrent shard traffic: several client threads drive disjoint tenant
// sets through the sync path while also pushing queued queries through
// competing drain() calls. Run under TSan by check.sh's serving leg.
TEST(ServeConcurrent, MixedShardTraffic) {
  const Matrix grid = unit_grid(4);
  const RandUniform strategy;
  SessionEngine engine({.shards = 8, .retrain_workers = 2});

  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kPerThread = 4;
  SessionOptions options;
  options.al = fast_al(1, 3);
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t k = 0; k < kPerThread; ++k) {
      options.seed = 100 + t * kPerThread + k;
      engine.open_session(t * kPerThread + k + 1, grid, strategy, options);
    }
  }

  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t k = 0; k < kPerThread; ++k) {
        const SessionId id = t * kPerThread + k + 1;
        bool queried = false;
        for (;;) {
          const Suggestion s = engine.suggest(id);
          if (s.done) break;
          const auto [cost, memory] = synthetic_oracle(s.features);
          engine.observe(id, cost, memory);
          if (!queried) {
            queried = true;
            engine.enqueue_query(id, grid);
            while (!engine.take_query_result(id).has_value()) {
              engine.drain();
              std::this_thread::yield();
            }
          }
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  for (std::size_t id = 1; id <= kThreads * kPerThread; ++id) {
    const OnlineResult result = engine.finish_session(id);
    EXPECT_EQ(result.records.size(), 1u + 3u);  // n_init + iterations
  }
}

}  // namespace
