file(REMOVE_RECURSE
  "libalamr_data.a"
)
