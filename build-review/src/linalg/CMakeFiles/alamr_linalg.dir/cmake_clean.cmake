file(REMOVE_RECURSE
  "CMakeFiles/alamr_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/alamr_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/alamr_linalg.dir/matrix.cpp.o"
  "CMakeFiles/alamr_linalg.dir/matrix.cpp.o.d"
  "libalamr_linalg.a"
  "libalamr_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alamr_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
