#pragma once

// Quadtree patch addressing for block-structured AMR, following the
// forest-of-octrees design of p4est/ForestClaw: the domain is a small
// "brick" of root patches, each the root of a quadtree; a patch at level L
// is addressed by integer coordinates (i, j) on the level-L grid.

#include <cstdint>
#include <functional>

namespace alamr::amr {

/// Address of one patch: level 0 is the root brick; each +1 level halves
/// the patch edge length. (i, j) index the level's logical patch grid,
/// which spans bricks_x * 2^level by bricks_y * 2^level patches.
struct PatchKey {
  std::int32_t level = 0;
  std::int32_t i = 0;
  std::int32_t j = 0;

  bool operator==(const PatchKey&) const = default;

  PatchKey parent() const noexcept { return {level - 1, i >> 1, j >> 1}; }

  /// Child c in Morton order: c = (jy << 1) | ix.
  PatchKey child(int c) const noexcept {
    return {level + 1, 2 * i + (c & 1), 2 * j + ((c >> 1) & 1)};
  }

  /// Which child of its parent this patch is (Morton position 0..3).
  int child_index() const noexcept { return (i & 1) | ((j & 1) << 1); }

  /// Face-adjacent neighbor at the same level. face: 0=-x, 1=+x, 2=-y, 3=+y.
  PatchKey face_neighbor(int face) const noexcept {
    switch (face) {
      case 0: return {level, i - 1, j};
      case 1: return {level, i + 1, j};
      case 2: return {level, i, j - 1};
      default: return {level, i, j + 1};
    }
  }
};

/// 64-bit Morton (z-order) interleave of two 32-bit coordinates. Orders
/// same-level patches along a space-filling curve; combined with the
/// quadtree DFS this yields the p4est leaf order used for partitioning.
std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y) noexcept;

struct PatchKeyHash {
  std::size_t operator()(const PatchKey& k) const noexcept {
    // Level in high bits; Morton of (i, j) below — collisions across
    // levels are impossible for level < 16, which is far beyond use.
    const std::uint64_t m =
        morton_encode(static_cast<std::uint32_t>(k.i), static_cast<std::uint32_t>(k.j));
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(k.level) << 48) ^ m);
  }
};

}  // namespace alamr::amr
