// Memory-aware experiment planning: the paper's headline scenario.
//
// An experimenter moves from a big-memory environment to one with a hard
// per-process memory limit and lets AL plan further experiments. This
// example runs RGMA (memory-aware) and RandGoodness (memory-blind) on the
// same partition and compares cumulative regret: compute cycles burned on
// jobs that would have crashed into the limit.

#include <cstdio>

#include "alamr/core/simulator.hpp"
#include "example_utils.hpp"

int main() {
  using namespace alamr;

  const data::Dataset dataset = examples::load_dataset();

  core::AlOptions options;
  options.n_test = dataset.size() / 3;
  options.n_init = 10;
  options.max_iterations = 60;

  const core::AlSimulator simulator(dataset, options);
  const double limit_mb = simulator.memory_limit_mb();
  std::size_t over = 0;
  for (const double m : dataset.memory) {
    if (m >= limit_mb) ++over;
  }
  std::printf(
      "Memory limit L_mem = %.2f MB; %zu of %zu dataset jobs exceed it\n",
      limit_mb, over, dataset.size());

  // Same partition + same strategy-RNG seed isolates the effect of the
  // memory filter.
  stats::Rng partition_rng(7);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);

  const core::Rgma rgma(simulator.memory_limit_log10());
  const core::RandGoodness blind;
  stats::Rng r1(99);
  stats::Rng r2(99);
  const auto aware = simulator.run_with_partition(rgma, partition, r1);
  const auto unaware = simulator.run_with_partition(blind, partition, r2);

  examples::print_rule();
  std::printf("%5s | %16s %16s | %16s %16s\n", "iter", "RGMA regret",
              "RGMA cost", "blind regret", "blind cost");
  examples::print_rule();
  const std::size_t n =
      std::min(aware.iterations.size(), unaware.iterations.size());
  for (std::size_t i = 0; i < n; i += 10) {
    std::printf("%5zu | %16.4f %16.4f | %16.4f %16.4f\n", i + 1,
                aware.iterations[i].cumulative_regret,
                aware.iterations[i].cumulative_cost,
                unaware.iterations[i].cumulative_regret,
                unaware.iterations[i].cumulative_cost);
  }
  examples::print_rule();

  const double cr_aware = aware.iterations.back().cumulative_regret;
  const double cr_blind = unaware.iterations.back().cumulative_regret;
  std::printf(
      "\nAfter %zu iterations: RGMA wasted %.4f node-hours on would-crash "
      "jobs\nversus %.4f for the memory-blind strategy",
      n, cr_aware, cr_blind);
  if (aware.early_stopped) {
    std::printf(
        " (RGMA terminated early:\nevery remaining candidate was predicted "
        "to exceed the limit)");
  }
  std::printf(".\n");
  return 0;
}
