// Tests for the runtime-dispatched kernels in <alamr/linalg/simd.hpp>.
//
// Every binary carries scalar, AVX2/FMA, and AVX-512 kernel variants and
// selects between them at startup (simd_dispatch.cpp); simd::dot & co.
// call through whichever table is active. These tests exercise the
// kernels at the process's startup level against a local strictly-
// sequential scalar reference — exact equality is NOT required at the
// vector levels (those kernels reassociate reductions and fuse multiply-
// adds by design), but agreement must be at working precision — and then
// sweep every level the host supports to pin the cross-level agreement
// and the set_level() contract itself.

#include "alamr/linalg/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "alamr/stats/rng.hpp"

namespace {

namespace simd = alamr::linalg::simd;
using alamr::stats::Rng;

// Pins the dispatch level for one scope, restoring the startup level on
// exit (mirrors the helper in test_golden_trajectory.cpp).
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level) : saved_(simd::active_level()) {
    EXPECT_TRUE(simd::set_level(level))
        << "host cannot run level " << simd::to_string(level);
  }
  ~ScopedSimdLevel() { simd::set_level(saved_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  simd::Level saved_;
};

double ref_dot(const double* x, const double* y, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double ref_sqdist(const double* x, const double* y, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& e : v) e = rng.uniform(-3.0, 3.0);
  return v;
}

// Edge sizes around the 4-wide unroll: empty, sub-width, exact multiples,
// and every tail length.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 257};

TEST(SimdKernels, DotMatchesScalarReference) {
  Rng rng(31);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    const auto y = random_vec(n, rng);
    const double expect = ref_dot(x.data(), y.data(), n);
    const double got = simd::dot(x.data(), y.data(), n);
    const double scale = std::max(1.0, std::abs(expect));
    EXPECT_NEAR(got, expect, 1e-12 * scale) << "n=" << n;
  }
}

TEST(SimdKernels, SquaredDistanceMatchesScalarReference) {
  Rng rng(32);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    const auto y = random_vec(n, rng);
    const double expect = ref_sqdist(x.data(), y.data(), n);
    const double got = simd::squared_distance(x.data(), y.data(), n);
    EXPECT_NEAR(got, expect, 1e-12 * std::max(1.0, expect)) << "n=" << n;
    EXPECT_GE(got, 0.0);
  }
}

TEST(SimdKernels, SquaredDistanceOfIdenticalVectorsIsExactlyZero) {
  Rng rng(33);
  const auto x = random_vec(37, rng);
  EXPECT_EQ(simd::squared_distance(x.data(), x.data(), x.size()), 0.0);
}

TEST(SimdKernels, AxpyMatchesScalarReference) {
  Rng rng(34);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    const auto y0 = random_vec(n, rng);
    const double alpha = rng.uniform(-2.0, 2.0);

    std::vector<double> expect = y0;
    for (std::size_t i = 0; i < n; ++i) expect[i] += alpha * x[i];

    std::vector<double> got = y0;
    simd::axpy(alpha, x.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i], expect[i], 1e-13 * std::max(1.0, std::abs(expect[i])))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernels, Rank1SubMatchesScalarReference) {
  Rng rng(35);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    const auto y0 = random_vec(n, rng);
    const double alpha = rng.uniform(-2.0, 2.0);

    std::vector<double> expect = y0;
    for (std::size_t i = 0; i < n; ++i) expect[i] -= alpha * x[i];

    std::vector<double> got = y0;
    simd::rank1_sub(alpha, x.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i], expect[i], 1e-13 * std::max(1.0, std::abs(expect[i])))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernels, AxpyWithZeroAlphaIsIdentity) {
  Rng rng(36);
  const auto x = random_vec(19, rng);
  const auto y0 = random_vec(19, rng);
  std::vector<double> got = y0;
  simd::axpy(0.0, x.data(), got.data(), got.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], y0[i]);
}

TEST(SimdKernels, FmaddBasicIdentity) {
  // Whether fused or not, exact-representable inputs give exact results.
  EXPECT_EQ(simd::fmadd(2.0, 3.0, 4.0), 10.0);
  EXPECT_EQ(simd::fmadd(-1.0, 5.0, 5.0), 0.0);
}

// ---- cross-level agreement ------------------------------------------------
//
// The same call at every host-supported dispatch level must agree within
// rel 1e-12 — the per-kernel bound the trajectory tolerance gate
// (test_golden_trajectory.cpp) compounds from. The scalar level is the
// reference; the vector levels differ only by reassociation and FMA.

TEST(SimdDispatch, AllLevelsAgreeWithin1e12PerKernel) {
  Rng rng(37);
  const simd::Level best = simd::max_supported_level();
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    const auto y = random_vec(n, rng);
    const double alpha = rng.uniform(-2.0, 2.0);

    double ref_dot_v = 0.0;
    double ref_sq_v = 0.0;
    std::vector<double> ref_axpy_v;
    std::vector<double> ref_r1_v;
    {
      const ScopedSimdLevel pin(simd::Level::kScalar);
      ref_dot_v = simd::dot(x.data(), y.data(), n);
      ref_sq_v = simd::squared_distance(x.data(), y.data(), n);
      ref_axpy_v = y;
      simd::axpy(alpha, x.data(), ref_axpy_v.data(), n);
      ref_r1_v = y;
      simd::rank1_sub(alpha, x.data(), ref_r1_v.data(), n);
    }

    for (int l = 0; l <= static_cast<int>(best); ++l) {
      const simd::Level level = static_cast<simd::Level>(l);
      const ScopedSimdLevel pin(level);
      SCOPED_TRACE(std::string("level=") + simd::to_string(level));

      const double scale = std::max(1.0, std::abs(ref_dot_v));
      EXPECT_NEAR(simd::dot(x.data(), y.data(), n), ref_dot_v, 1e-12 * scale)
          << "n=" << n;
      EXPECT_NEAR(simd::squared_distance(x.data(), y.data(), n), ref_sq_v,
                  1e-12 * std::max(1.0, ref_sq_v))
          << "n=" << n;

      std::vector<double> got = y;
      simd::axpy(alpha, x.data(), got.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(got[i], ref_axpy_v[i],
                    1e-12 * std::max(1.0, std::abs(ref_axpy_v[i])))
            << "axpy n=" << n << " i=" << i;
      }
      got = y;
      simd::rank1_sub(alpha, x.data(), got.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(got[i], ref_r1_v[i],
                    1e-12 * std::max(1.0, std::abs(ref_r1_v[i])))
            << "rank1_sub n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdDispatch, ScalarLevelIsAlwaysAvailable) {
  EXPECT_GE(simd::max_supported_level(), simd::Level::kScalar);
  const simd::Level saved = simd::active_level();
  EXPECT_TRUE(simd::set_level(simd::Level::kScalar));
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_TRUE(simd::set_level(saved));
  EXPECT_EQ(simd::active_level(), saved);
}

TEST(SimdDispatch, SetLevelRejectsUnsupportedAndLeavesStateUnchanged) {
  const simd::Level best = simd::max_supported_level();
  if (best == simd::Level::kAvx512) {
    GTEST_SKIP() << "host supports every level; nothing to reject";
  }
  const simd::Level saved = simd::active_level();
  const simd::Level above = static_cast<simd::Level>(static_cast<int>(best) + 1);
  EXPECT_FALSE(simd::set_level(above));
  EXPECT_EQ(simd::active_level(), saved);
}

TEST(SimdDispatch, LevelNamesRoundTrip) {
  EXPECT_STREQ(simd::to_string(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::to_string(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::to_string(simd::Level::kAvx512), "avx512");
  EXPECT_FALSE(simd::cpu_features().empty());
}

}  // namespace
