// Tests for CSV persistence of datasets.

#include "alamr/data/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace {

using namespace alamr::data;
using alamr::linalg::Matrix;

Dataset sample_dataset() {
  Dataset d;
  d.feature_names = {"p", "mx", "maxlevel", "r0", "rhoin"};
  d.x = Matrix{{4.0, 8.0, 3.0, 0.2, 0.02}, {32.0, 32.0, 6.0, 0.5, 0.5}};
  d.wallclock = {1.97, 4262.73};
  d.cost = {0.002, 11.853};
  d.memory = {0.02, 32.56};
  return d;
}

TEST(Csv, StringRoundTripPreservesEverything) {
  const Dataset original = sample_dataset();
  const Dataset parsed = from_csv_string(to_csv_string(original));
  EXPECT_EQ(parsed.feature_names, original.feature_names);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t j = 0; j < original.dim(); ++j) {
      EXPECT_DOUBLE_EQ(parsed.x(i, j), original.x(i, j));
    }
    EXPECT_DOUBLE_EQ(parsed.wallclock[i], original.wallclock[i]);
    EXPECT_DOUBLE_EQ(parsed.cost[i], original.cost[i]);
    EXPECT_DOUBLE_EQ(parsed.memory[i], original.memory[i]);
  }
}

TEST(Csv, HeaderFormat) {
  const std::string text = to_csv_string(sample_dataset());
  EXPECT_EQ(text.substr(0, text.find('\n')),
            "p,mx,maxlevel,r0,rhoin,wallclock_s,cost_nh,maxrss_mb");
}

TEST(Csv, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "alamr_test.csv";
  const Dataset original = sample_dataset();
  write_csv(original, path);
  const Dataset loaded = read_csv(path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded.cost[1], original.cost[1]);
  std::filesystem::remove(path);
}

TEST(Csv, RejectsMalformedInput) {
  EXPECT_THROW(from_csv_string(""), std::runtime_error);
  EXPECT_THROW(from_csv_string("a,b\n1,2\n"), std::runtime_error);  // < 4 cols
  EXPECT_THROW(from_csv_string("a,wallclock_s,cost_nh,maxrss_mb\n1,2,3\n"),
               std::runtime_error);  // wrong field count
  EXPECT_THROW(from_csv_string("a,wallclock_s,cost_nh,maxrss_mb\n1,x,3,4\n"),
               std::runtime_error);  // non-numeric
}

TEST(Csv, SkipsBlankLines) {
  const Dataset parsed = from_csv_string(
      "f0,wallclock_s,cost_nh,maxrss_mb\n1,2,3,4\n\n5,6,7,8\n");
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.memory[1], 8.0);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/path/file.csv"), std::runtime_error);
}

TEST(Csv, PreservesPrecision) {
  Dataset d;
  d.feature_names = {"f"};
  d.x = Matrix{{0.1234567890123456}};
  d.wallclock = {1e-17};
  d.cost = {3.141592653589793};
  d.memory = {2.718281828459045};
  const Dataset parsed = from_csv_string(to_csv_string(d));
  EXPECT_DOUBLE_EQ(parsed.x(0, 0), d.x(0, 0));
  EXPECT_DOUBLE_EQ(parsed.cost[0], d.cost[0]);
}

// --- Robustness: hostile inputs must fail with a clean runtime_error, and
// --- benign formatting variants (CRLF, trailing newline) must parse. -----

constexpr const char* kHeader = "f0,wallclock_s,cost_nh,maxrss_mb\n";

TEST(CsvRobustness, RejectsNonFiniteResponses) {
  // from_chars accepts "nan"/"inf" spellings, so the loader must reject
  // them explicitly — they would poison the log10 transform downstream.
  EXPECT_THROW(from_csv_string(std::string(kHeader) + "1,nan,3,4\n"),
               std::runtime_error);
  EXPECT_THROW(from_csv_string(std::string(kHeader) + "1,2,inf,4\n"),
               std::runtime_error);
  EXPECT_THROW(from_csv_string(std::string(kHeader) + "1,2,3,-inf\n"),
               std::runtime_error);
}

TEST(CsvRobustness, RejectsZeroAndNegativeResponses) {
  EXPECT_THROW(from_csv_string(std::string(kHeader) + "1,0,3,4\n"),
               std::runtime_error);  // zero wallclock
  EXPECT_THROW(from_csv_string(std::string(kHeader) + "1,2,-3,4\n"),
               std::runtime_error);  // negative cost
  EXPECT_THROW(from_csv_string(std::string(kHeader) + "1,2,3,0\n"),
               std::runtime_error);  // zero memory
}

TEST(CsvRobustness, RejectsNonFiniteFeatures) {
  EXPECT_THROW(from_csv_string(std::string(kHeader) + "nan,2,3,4\n"),
               std::runtime_error);
  EXPECT_THROW(from_csv_string(std::string(kHeader) + "inf,2,3,4\n"),
               std::runtime_error);
  // Negative and zero FEATURES are fine — only responses must be positive.
  const Dataset ok = from_csv_string(std::string(kHeader) + "-1.5,2,3,4\n");
  EXPECT_DOUBLE_EQ(ok.x(0, 0), -1.5);
}

TEST(CsvRobustness, RejectsMissingAndExtraColumns) {
  EXPECT_THROW(from_csv_string(std::string(kHeader) + "1,2,3\n"),
               std::runtime_error);  // missing a response column
  EXPECT_THROW(from_csv_string(std::string(kHeader) + "1,2,3,4,5\n"),
               std::runtime_error);  // extra column
  EXPECT_THROW(from_csv_string("wallclock_s,cost_nh,maxrss_mb\n1,2,3\n"),
               std::runtime_error);  // no feature columns at all
}

TEST(CsvRobustness, RejectsJunkNumericFields) {
  EXPECT_THROW(from_csv_string(std::string(kHeader) + "1,2,3,4abc\n"),
               std::runtime_error);  // trailing garbage after the number
  EXPECT_THROW(from_csv_string(std::string(kHeader) + "1, 2,3,4\n"),
               std::runtime_error);  // interior whitespace
  EXPECT_THROW(from_csv_string(std::string(kHeader) + "1,,3,4\n"),
               std::runtime_error);  // empty field
}

TEST(CsvRobustness, ErrorMessagesNameTheLineAndColumn) {
  try {
    from_csv_string(std::string(kHeader) + "1,2,3,4\n1,2,-1,4\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("cost"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
}

TEST(CsvRobustness, ParsesCrlfLineEndings) {
  const Dataset parsed = from_csv_string(
      "f0,wallclock_s,cost_nh,maxrss_mb\r\n1,2,3,4\r\n5,6,7,8\r\n");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.feature_names[0], "f0");  // no stray '\r' in names
  EXPECT_DOUBLE_EQ(parsed.x(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(parsed.memory[1], 8.0);
}

TEST(CsvRobustness, TrailingNewlineVariantsAreEquivalent) {
  const std::string body = std::string(kHeader) + "1,2,3,4";
  const Dataset without = from_csv_string(body);
  const Dataset with_lf = from_csv_string(body + "\n");
  const Dataset with_crlf = from_csv_string(body + "\r\n");
  EXPECT_EQ(without.size(), 1u);
  EXPECT_EQ(with_lf.size(), 1u);
  EXPECT_EQ(with_crlf.size(), 1u);
  EXPECT_DOUBLE_EQ(without.cost[0], with_crlf.cost[0]);
}

TEST(CsvRobustness, RoundTripSurvivesTheStricterLoader) {
  // The generator writes positive responses, so its own output must keep
  // loading after the validation tightening.
  Dataset d;
  d.feature_names = {"a", "b"};
  d.x = Matrix{{1.0, 2.0}, {3.0, 4.0}};
  d.wallclock = {1e-300, 1e300};  // extreme but finite and positive
  d.cost = {5e-17, 2.5};
  d.memory = {0.001, 4096.0};
  const Dataset parsed = from_csv_string(to_csv_string(d));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.wallclock[0], 1e-300);
  EXPECT_DOUBLE_EQ(parsed.wallclock[1], 1e300);
}

}  // namespace
