#include "alamr/data/csv.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace alamr::data {

namespace {

/// Drops a trailing '\r' so files written on Windows (CRLF line endings)
/// parse identically to LF files.
void strip_carriage_return(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  return fields;
}

double parse_double(const std::string& token, std::size_t line_number) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error("CSV parse error at line " +
                             std::to_string(line_number) + ": '" + token + "'");
  }
  return value;
}

/// from_chars happily parses "nan" and "inf"; features must at least be
/// finite for the unit-cube scaler to be meaningful.
double parse_feature(const std::string& token, std::size_t line_number) {
  const double value = parse_double(token, line_number);
  if (!std::isfinite(value)) {
    throw std::runtime_error("CSV: non-finite feature at line " +
                             std::to_string(line_number) + ": '" + token + "'");
  }
  return value;
}

/// Responses feed log10 transforms downstream (log-space GPR targets,
/// goodness weights), where zero, negative, or non-finite values would
/// silently poison the models with -inf/NaN. Reject them at the boundary.
double parse_response(const std::string& token, std::size_t line_number,
                      const char* column) {
  const double value = parse_double(token, line_number);
  if (!std::isfinite(value) || value <= 0.0) {
    throw std::runtime_error("CSV: " + std::string(column) + " at line " +
                             std::to_string(line_number) +
                             " must be finite and positive, got '" + token +
                             "'");
  }
  return value;
}

}  // namespace

std::string to_csv_string(const Dataset& dataset) {
  dataset.validate();
  std::ostringstream os;
  os.precision(17);
  for (std::size_t j = 0; j < dataset.dim(); ++j) {
    os << (dataset.feature_names.empty() ? ("f" + std::to_string(j))
                                         : dataset.feature_names[j])
       << ',';
  }
  os << "wallclock_s,cost_nh,maxrss_mb\n";
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    for (std::size_t j = 0; j < dataset.dim(); ++j) os << dataset.x(i, j) << ',';
    os << dataset.wallclock[i] << ',' << dataset.cost[i] << ','
       << dataset.memory[i] << '\n';
  }
  return os.str();
}

Dataset from_csv_string(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) throw std::runtime_error("CSV: empty input");
  strip_carriage_return(line);

  const std::vector<std::string> header = split_line(line);
  if (header.size() < 4) {
    throw std::runtime_error("CSV: need at least one feature and 3 responses");
  }
  const std::size_t dim = header.size() - 3;

  Dataset dataset;
  dataset.feature_names.assign(header.begin(),
                               header.begin() + static_cast<std::ptrdiff_t>(dim));

  std::vector<double> flat;
  std::size_t rows = 0;
  std::size_t line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    strip_carriage_return(line);
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_line(line);
    if (fields.size() != header.size()) {
      throw std::runtime_error("CSV: wrong field count at line " +
                               std::to_string(line_number));
    }
    for (std::size_t j = 0; j < dim; ++j) {
      flat.push_back(parse_feature(fields[j], line_number));
    }
    dataset.wallclock.push_back(
        parse_response(fields[dim], line_number, "wallclock"));
    dataset.cost.push_back(parse_response(fields[dim + 1], line_number, "cost"));
    dataset.memory.push_back(
        parse_response(fields[dim + 2], line_number, "memory"));
    ++rows;
  }

  dataset.x = Matrix(rows, dim);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      dataset.x(i, j) = flat[i * dim + j];
    }
  }
  dataset.validate();
  return dataset;
}

void write_csv(const Dataset& dataset, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path.string());
  out << to_csv_string(dataset);
  if (!out) throw std::runtime_error("write_csv: write failed for " + path.string());
}

Dataset read_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_csv_string(buffer.str());
}

}  // namespace alamr::data
