#include "alamr/data/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace alamr::data {

namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  return fields;
}

double parse_double(const std::string& token, std::size_t line_number) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error("CSV parse error at line " +
                             std::to_string(line_number) + ": '" + token + "'");
  }
  return value;
}

}  // namespace

std::string to_csv_string(const Dataset& dataset) {
  dataset.validate();
  std::ostringstream os;
  os.precision(17);
  for (std::size_t j = 0; j < dataset.dim(); ++j) {
    os << (dataset.feature_names.empty() ? ("f" + std::to_string(j))
                                         : dataset.feature_names[j])
       << ',';
  }
  os << "wallclock_s,cost_nh,maxrss_mb\n";
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    for (std::size_t j = 0; j < dataset.dim(); ++j) os << dataset.x(i, j) << ',';
    os << dataset.wallclock[i] << ',' << dataset.cost[i] << ','
       << dataset.memory[i] << '\n';
  }
  return os.str();
}

Dataset from_csv_string(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) throw std::runtime_error("CSV: empty input");

  const std::vector<std::string> header = split_line(line);
  if (header.size() < 4) {
    throw std::runtime_error("CSV: need at least one feature and 3 responses");
  }
  const std::size_t dim = header.size() - 3;

  Dataset dataset;
  dataset.feature_names.assign(header.begin(),
                               header.begin() + static_cast<std::ptrdiff_t>(dim));

  std::vector<double> flat;
  std::size_t rows = 0;
  std::size_t line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_line(line);
    if (fields.size() != header.size()) {
      throw std::runtime_error("CSV: wrong field count at line " +
                               std::to_string(line_number));
    }
    for (std::size_t j = 0; j < dim; ++j) {
      flat.push_back(parse_double(fields[j], line_number));
    }
    dataset.wallclock.push_back(parse_double(fields[dim], line_number));
    dataset.cost.push_back(parse_double(fields[dim + 1], line_number));
    dataset.memory.push_back(parse_double(fields[dim + 2], line_number));
    ++rows;
  }

  dataset.x = Matrix(rows, dim);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      dataset.x(i, j) = flat[i * dim + j];
    }
  }
  dataset.validate();
  return dataset;
}

void write_csv(const Dataset& dataset, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path.string());
  out << to_csv_string(dataset);
  if (!out) throw std::runtime_error("write_csv: write failed for " + path.string());
}

Dataset read_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_csv_string(buffer.str());
}

}  // namespace alamr::data
