#include "alamr/stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>

#include "alamr/stats/descriptive.hpp"

namespace alamr::stats {

Interval bootstrap_interval(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t resamples, double confidence, Rng& rng) {
  if (values.empty()) throw std::invalid_argument("bootstrap: empty input");
  if (resamples == 0) throw std::invalid_argument("bootstrap: resamples == 0");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("bootstrap: confidence outside (0,1)");
  }

  Interval result;
  result.point = statistic(values);

  std::vector<double> resample(values.size());
  std::vector<double> estimates;
  estimates.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (double& v : resample) {
      v = values[rng.uniform_index(values.size())];
    }
    estimates.push_back(statistic(resample));
  }
  std::sort(estimates.begin(), estimates.end());
  const double alpha = (1.0 - confidence) / 2.0;
  result.lo = quantile_sorted(estimates, alpha);
  result.hi = quantile_sorted(estimates, 1.0 - alpha);
  return result;
}

Interval bootstrap_mean(std::span<const double> values, std::size_t resamples,
                        double confidence, Rng& rng) {
  return bootstrap_interval(
      values, [](std::span<const double> v) { return mean(v); }, resamples,
      confidence, rng);
}

}  // namespace alamr::stats
