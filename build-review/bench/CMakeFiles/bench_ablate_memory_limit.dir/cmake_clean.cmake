file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_memory_limit.dir/bench_ablate_memory_limit.cpp.o"
  "CMakeFiles/bench_ablate_memory_limit.dir/bench_ablate_memory_limit.cpp.o.d"
  "bench_ablate_memory_limit"
  "bench_ablate_memory_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_memory_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
