// A1 — ablation of the goodness base (paper Sec. IV-B: "Base 10 is the
// most intuitive option ... higher bases will lead to more skewed
// candidate distributions"). Sweeps base in {2, e, 10, 100} and reports
// the selected-cost distribution skew, cumulative cost, and final RMSE.

#include <cmath>
#include <cstdio>

#include "alamr/stats/descriptive.hpp"
#include "bench_common.hpp"

int main() {
  using namespace alamr;
  bench::print_header(
      "A1: RandGoodness base ablation", "Sec. IV-B design choice",
      "higher base -> more skew toward cheap samples, lower cumulative "
      "cost, (eventually) worse exploration/RMSE");

  const data::Dataset dataset = bench::load_dataset();
  const core::AlOptions options = bench::al_options(/*n_init=*/50,
                                                    /*iterations=*/120);
  const core::AlSimulator simulator(dataset, options);

  // Shared partition isolates the base's effect.
  stats::Rng partition_rng(31415);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);

  std::printf("\n%8s %12s %12s %12s %14s %12s\n", "base", "median[nh]",
              "cost skew", "cum.cost", "RMSE(cost)", "max picked");
  for (const double base : {2.0, std::exp(1.0), 10.0, 100.0}) {
    const core::RandGoodness strategy(base);
    stats::Rng rng(17);
    const core::TrajectoryResult traj =
        simulator.run_with_partition(strategy, partition, rng);
    std::vector<double> costs;
    for (const auto& rec : traj.iterations) costs.push_back(rec.actual_cost);
    const stats::Summary s = stats::summarize(costs);
    std::printf("%8.3g %12.4f %12.3f %12.3f %14.4f %12.4f\n", base, s.median,
                stats::skewness(costs),
                traj.iterations.back().cumulative_cost,
                traj.iterations.back().rmse_cost, s.max);
  }

  std::printf("\nReference deterministic extremes on the same partition:\n");
  for (const auto* which : {"MinPred", "RandUniform"}) {
    std::unique_ptr<core::Strategy> strategy;
    if (std::string(which) == "MinPred") {
      strategy = std::make_unique<core::MinPred>();
    } else {
      strategy = std::make_unique<core::RandUniform>();
    }
    stats::Rng rng(17);
    const core::TrajectoryResult traj =
        simulator.run_with_partition(*strategy, partition, rng);
    std::printf("  %-12s cum.cost %10.3f nh, final RMSE(cost) %.4f\n", which,
                traj.iterations.back().cumulative_cost,
                traj.iterations.back().rmse_cost);
  }
  return 0;
}
