// A6 — solver-accuracy ablation: first-order Godunov (the dataset default)
// versus second-order MUSCL-Hancock, and HLL versus HLLC. Reports the Sod
// plateau error (against the exact Riemann solution) and the effect on the
// shock-bubble refinement footprint — i.e. how the numerical scheme would
// shift the cost/memory dataset the AL study consumes.

#include <cmath>
#include <cstdio>
#include <memory>

#include "alamr/amr/solver.hpp"
#include "bench_common.hpp"

namespace {

using namespace alamr;

double sod_plateau_error(amr::SpatialOrder order, amr::RiemannSolver riemann) {
  amr::ShockBubbleProblem problem;
  problem.mx = 32;
  problem.max_level = 0;
  problem.final_time = 0.1;
  problem.order = order;
  problem.riemann = riemann;
  amr::FvSolver solver(problem);
  solver.mesh().for_each_cell_set([](double x, double) {
    return x < 0.5 ? amr::to_conserved(amr::Prim{1.0, 0.0, 0.0, 1.0})
                   : amr::to_conserved(amr::Prim{0.125, 0.0, 0.0, 0.1});
  });
  solver.run();
  return std::abs(solver.mesh().rho_at(0.55, 0.25) - 0.4263) +
         std::abs(solver.mesh().rho_at(0.63, 0.25) - 0.2656);
}

}  // namespace

int main() {
  bench::print_header(
      "A6: spatial order / Riemann solver ablation", "solver design choices",
      "second order + HLLC cuts the Sod plateau error; scheme choice "
      "shifts the refinement footprint (and hence the cost dataset)");

  std::printf("\nSod plateau error (sum of |rho - exact| at the two stars):\n");
  std::printf("%-24s %14s\n", "scheme", "error");
  const struct {
    const char* name;
    amr::SpatialOrder order;
    amr::RiemannSolver riemann;
  } schemes[] = {
      {"order1 + HLL (default)", amr::SpatialOrder::kFirstOrder,
       amr::RiemannSolver::kHll},
      {"order1 + HLLC", amr::SpatialOrder::kFirstOrder,
       amr::RiemannSolver::kHllc},
      {"order2 + HLL", amr::SpatialOrder::kSecondOrder,
       amr::RiemannSolver::kHll},
      {"order2 + HLLC", amr::SpatialOrder::kSecondOrder,
       amr::RiemannSolver::kHllc},
  };
  for (const auto& s : schemes) {
    std::printf("%-24s %14.4f\n", s.name, sod_plateau_error(s.order, s.riemann));
  }

  std::printf("\nShock-bubble refinement footprint (mx=8, maxlevel=4):\n");
  std::printf("%-24s %8s %10s %8s %14s\n", "scheme", "leaves", "cells", "steps",
              "cell-updates");
  for (const auto& s : schemes) {
    amr::ShockBubbleProblem problem;
    problem.mx = 8;
    problem.max_level = 4;
    problem.r0 = 0.35;
    problem.rhoin = 0.1;
    problem.order = s.order;
    problem.riemann = s.riemann;
    amr::FvSolver solver(problem);
    const amr::SolverStats stats = solver.run();
    std::printf("%-24s %8zu %10zu %8zu %14zu\n", s.name,
                solver.mesh().leaf_count(), solver.mesh().total_cells(),
                stats.steps, stats.total_cell_updates);
  }
  return 0;
}
