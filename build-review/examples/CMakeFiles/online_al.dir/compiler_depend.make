# Empty compiler generated dependencies file for online_al.
# This may be replaced when dependencies are built.
