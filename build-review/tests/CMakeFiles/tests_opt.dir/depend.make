# Empty dependencies file for tests_opt.
# This may be replaced when dependencies are built.
