// AVX-512 kernel table. CMake compiles this TU with -march=x86-64-v4
// (AVX-512 F/BW/CD/DQ/VL) and defines ALAMR_SIMD_TU_AVX512 when the
// compiler accepts the flag; otherwise the TU compiles to a null table
// and the level reports unsupported. Eight independent accumulator chains
// fill one 512-bit register — same recipe as AVX2, one combine level
// wider.

#include <cmath>
#include <cstddef>

#include "alamr/linalg/simd_tables.hpp"

#if defined(ALAMR_SIMD_TU_AVX512)

#define ALAMR_SIMD_TU_CHAINS 8
#include "alamr/linalg/simd_kernels.inc"

namespace alamr::linalg::simd::detail {
const KernelTable* avx512_table() noexcept { return &kTuTable; }
}  // namespace alamr::linalg::simd::detail

#else

namespace alamr::linalg::simd::detail {
const KernelTable* avx512_table() noexcept { return nullptr; }
}  // namespace alamr::linalg::simd::detail

#endif
