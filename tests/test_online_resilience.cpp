// Serving-core resilience (DESIGN.md §14): the online driver under oracle
// failures and injected timeouts, the breaker-guarded degradation ladder
// (exact -> subset-of-data -> prior mean) with half-open recovery, and
// online checkpoint halt/kill/resume byte-identity.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>

#include "alamr/core/checkpoint.hpp"
#include "alamr/core/export.hpp"
#include "alamr/core/online.hpp"
#include "alamr/data/partition.hpp"
#include "synthetic_dataset.hpp"

namespace {

using namespace alamr;
using namespace alamr::core;
namespace faults = alamr::core::faults;
namespace res = alamr::core::resilience;
using alamr::linalg::Matrix;
using alamr::stats::Rng;

std::pair<double, double> synthetic_oracle(std::span<const double> f) {
  const double cost = 0.01 * std::pow(10.0, 2.0 * f[0]);
  const double memory = 0.5 * std::pow(10.0, 1.5 * f[1]);
  return {cost, memory};
}

Matrix unit_grid(std::size_t per_axis) {
  Matrix grid(per_axis * per_axis, 2);
  for (std::size_t i = 0; i < per_axis; ++i) {
    for (std::size_t j = 0; j < per_axis; ++j) {
      grid(i * per_axis + j, 0) =
          static_cast<double>(i) / static_cast<double>(per_axis - 1);
      grid(i * per_axis + j, 1) =
          static_cast<double>(j) / static_cast<double>(per_axis - 1);
    }
  }
  return grid;
}

OnlineAlOptions fast_options(std::size_t n_init = 3, std::size_t iters = 8) {
  OnlineAlOptions options;
  options.n_init = n_init;
  options.iterations = iters;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 20;
  options.refit.max_opt_iterations = 4;
  return options;
}

/// Byte-exact serialization of an online run's records (hexfloat doubles).
std::string records_to_string(const OnlineResult& result) {
  std::string out;
  char line[256];
  for (const OnlineRecord& r : result.records) {
    std::snprintf(line, sizeof(line), "%zu,%a,%a,%a,%a,%a,%a,%d\n",
                  r.grid_row, r.cost, r.memory, r.predicted_cost_log10,
                  r.predicted_mem_log10, r.cumulative_cost,
                  r.cumulative_regret, r.initial_phase ? 1 : 0);
    out += line;
  }
  return out;
}

TEST(OnlineResilience, PersistentOracleFailureSkipsCandidateAndContinues) {
  // The very first candidate's oracle fails every attempt: the executor
  // retries, gives up, and the run abandons the candidate instead of
  // dying — the remaining experiments complete normally.
  std::size_t calls = 0;
  const ExperimentOracle oracle =
      [&](std::span<const double> f) -> std::pair<double, double> {
    ++calls;
    if (calls <= 3) throw std::runtime_error("node offline");
    return synthetic_oracle(f);
  };
  OnlineAlDriver driver(unit_grid(8), oracle, fast_options(3, 8));
  Rng rng(11);
  const OnlineResult result = driver.run(RandGoodness(), rng);
  EXPECT_EQ(result.oracle_giveups, 1u);
  EXPECT_EQ(result.records.size(), 11u);  // 3 init + 8 AL, none lost
  EXPECT_EQ(calls, 3u + 11u);             // 3 failed attempts + 11 successes
  // The abandoned candidate is out of the pool too.
  EXPECT_EQ(driver.remaining_candidates(), 64u - 12u);
}

TEST(OnlineResilience, TransientOracleFailureRecoversWithinRetryBudget) {
  // Two failures then success: same records as an unfailing run, one
  // recovered operation, zero giveups.
  std::size_t calls = 0;
  const ExperimentOracle flaky =
      [&](std::span<const double> f) -> std::pair<double, double> {
    ++calls;
    if (calls <= 2) throw std::runtime_error("transient");
    return synthetic_oracle(f);
  };
  OnlineAlDriver flaky_driver(unit_grid(8), flaky, fast_options(3, 8));
  Rng rng_a(11);
  const OnlineResult with_failures = flaky_driver.run(RandGoodness(), rng_a);

  OnlineAlDriver clean_driver(unit_grid(8), synthetic_oracle,
                              fast_options(3, 8));
  Rng rng_b(11);
  const OnlineResult clean = clean_driver.run(RandGoodness(), rng_b);

  EXPECT_EQ(with_failures.oracle_giveups, 0u);
  EXPECT_EQ(records_to_string(with_failures), records_to_string(clean));
}

TEST(OnlineResilience, InjectedTimeoutsRetryWithoutPerturbingTheRun) {
  // acquire.timeout fires on the first two consultations: the first
  // oracle call times out twice and succeeds on the third attempt.
  // Retries burn virtual ticks only — records stay byte-identical to an
  // unfaulted run.
  OnlineAlOptions faulted = fast_options(3, 8);
  faulted.plan = faults::FaultPlan::parse("acquire.timeout:hits=0|1");
  OnlineAlDriver faulted_driver(unit_grid(8), synthetic_oracle, faulted);
  Rng rng_a(3);
  const OnlineResult with_timeouts = faulted_driver.run(RandGoodness(), rng_a);

  OnlineAlDriver clean_driver(unit_grid(8), synthetic_oracle,
                              fast_options(3, 8));
  Rng rng_b(3);
  const OnlineResult clean = clean_driver.run(RandGoodness(), rng_b);

  EXPECT_EQ(with_timeouts.oracle_giveups, 0u);
  EXPECT_EQ(records_to_string(with_timeouts), records_to_string(clean));
}

TEST(OnlineResilience, TimeoutStormIsDeterministicAcrossRuns) {
  // A heavy probabilistic timeout plan: whatever mix of retries, giveups,
  // and skips it produces, two runs produce the same mix byte-for-byte.
  const auto run_once = [] {
    OnlineAlOptions options = fast_options(3, 8);
    options.plan = faults::FaultPlan::parse("seed=21;acquire.timeout:p=0.4");
    OnlineAlDriver driver(unit_grid(8), synthetic_oracle, options);
    Rng rng(9);
    return driver.run(RandGoodness(), rng);
  };
  const OnlineResult a = run_once();
  const OnlineResult b = run_once();
  EXPECT_EQ(records_to_string(a), records_to_string(b));
  EXPECT_EQ(a.oracle_giveups, b.oracle_giveups);
}

TEST(OnlineResilience, DisabledResilienceRestoresFailFastContract) {
  std::size_t calls = 0;
  const ExperimentOracle oracle =
      [&](std::span<const double>) -> std::pair<double, double> {
    ++calls;
    throw std::runtime_error("node offline");
  };
  OnlineAlOptions options = fast_options(3, 8);
  options.resilience.enabled = false;
  OnlineAlDriver driver(unit_grid(8), oracle, options);
  Rng rng(2);
  EXPECT_THROW(driver.run(RandGoodness(), rng), std::runtime_error);
  EXPECT_EQ(calls, 1u);  // no retries without the executor
}

// --- Degradation ladder ----------------------------------------------------

/// Small clean training set for direct backend tests.
struct LadderFixture {
  Matrix x{12, 2};
  std::vector<double> y;
  LadderFixture() {
    Rng rng(4);
    y.reserve(12);
    for (std::size_t i = 0; i < 12; ++i) {
      x(i, 0) = rng.uniform(0.0, 1.0);
      x(i, 1) = rng.uniform(0.0, 1.0);
      y.push_back(std::sin(3.0 * x(i, 0)) + 0.5 * x(i, 1));
    }
  }
};

std::unique_ptr<gp::PosteriorBackend> make_guarded_exact(
    const res::Options& resilience) {
  gp::BackendOptions backend;
  backend.kind = gp::BackendKind::kExact;
  gp::GprOptions quiet;
  quiet.optimize = false;
  return gp::make_resilient_backend(
      backend, resilience, [] { return gp::make_paper_kernel(); }, quiet);
}

TEST(OnlineLadder, ExternalEventsTripBreakerDegradeAndHalfOpenRecover) {
  res::Options resilience;
  resilience.breaker_threshold = 3;
  resilience.probe_after = 2;
  auto backend = make_guarded_exact(resilience);
  auto* guarded = dynamic_cast<gp::ResilientBackend*>(backend.get());
  ASSERT_NE(guarded, nullptr);

  LadderFixture data;
  Rng rng(5);
  backend->fit(data.x, data.y, rng);
  EXPECT_EQ(guarded->health(), res::Health::kHealthy);
  EXPECT_EQ(guarded->rung(), 0u);

  // Three acquisition timeouts attributed to this model trip its breaker;
  // the NEXT operation steps the ladder.
  for (int i = 0; i < 3; ++i) {
    guarded->record_external_event(res::Event::kAcquireTimeout);
  }
  EXPECT_TRUE(guarded->breaker().tripped());
  backend->predict(data.x);
  EXPECT_EQ(guarded->rung(), 1u);
  EXPECT_EQ(guarded->active_kind(), gp::BackendKind::kSubsetOfData);
  EXPECT_EQ(guarded->health(), res::Health::kDegraded);
  EXPECT_EQ(guarded->breaker().trips(), 1u);
  EXPECT_EQ(guarded->kind(), gp::BackendKind::kExact)
      << "configured kind must not change under degradation";

  // The degrade-op's own success already opened the ok streak (1); one
  // more clean op reaches probe_after=2, and the NEXT op probes the rung
  // above — the rebuild succeeds and the model recovers to the
  // configured backend.
  backend->predict(data.x);
  EXPECT_EQ(guarded->rung(), 1u);
  backend->predict(data.x);
  EXPECT_EQ(guarded->rung(), 0u);
  EXPECT_EQ(guarded->active_kind(), gp::BackendKind::kExact);
  EXPECT_EQ(guarded->health(), res::Health::kHealthy);
  EXPECT_TRUE(backend->fitted());
}

TEST(OnlineLadder, NonPsdPlanWalksExactToSodToPriorMean) {
  // Every Cholesky attempt vetoed, forever: exact fails, the
  // subset-of-data rebuild fails too, and the ladder lands on the
  // prior-mean rung — degraded but alive, with a sane posterior.
  faults::FaultInjector injector(
      faults::FaultPlan::parse("cholesky.non_psd:p=1"));
  const faults::ScopedFaultInjector scope(injector);

  res::Options resilience;  // defaults: threshold 3, max_attempts 3
  auto backend = make_guarded_exact(resilience);
  auto* guarded = dynamic_cast<gp::ResilientBackend*>(backend.get());
  ASSERT_NE(guarded, nullptr);

  LadderFixture data;
  Rng rng(6);
  ASSERT_NO_THROW(backend->fit(data.x, data.y, rng));
  EXPECT_EQ(guarded->active_kind(), gp::BackendKind::kPriorMean);
  EXPECT_EQ(guarded->rung(), 2u);
  EXPECT_EQ(guarded->health(), res::Health::kDegraded);
  EXPECT_TRUE(backend->fitted());

  const gp::Prediction pred = backend->predict(data.x);
  double mean_y = 0.0;
  for (const double v : data.y) mean_y += v;
  mean_y /= static_cast<double>(data.y.size());
  for (std::size_t i = 0; i < pred.mean.size(); ++i) {
    EXPECT_NEAR(pred.mean[i], mean_y, 1e-12);
    EXPECT_GT(pred.stddev[i], 0.0);
  }
}

TEST(OnlineLadder, LadderDisabledHaltsInsteadOfDegrading) {
  faults::FaultInjector injector(
      faults::FaultPlan::parse("cholesky.non_psd:p=1"));
  const faults::ScopedFaultInjector scope(injector);

  res::Options resilience;
  resilience.ladder = false;  // no rungs below the configured backend
  auto backend = make_guarded_exact(resilience);
  auto* guarded = dynamic_cast<gp::ResilientBackend*>(backend.get());
  ASSERT_NE(guarded, nullptr);

  LadderFixture data;
  Rng rng(6);
  EXPECT_THROW(backend->fit(data.x, data.y, rng), std::runtime_error);
  EXPECT_EQ(guarded->health(), res::Health::kHalted);
}

TEST(OnlineLadder, TrajectoryUnderNonPsdPlanIsDeterministic) {
  // Acceptance: cholesky.non_psd:p=1 deterministically degrades the
  // simulator's models down the ladder, and two runs agree on both the
  // trajectory bytes and the resilience.* counters.
  const bool was_enabled = core::trace::enabled();
  core::trace::set_enabled(true);
  const auto dataset = alamr::testing::synthetic_amr_dataset(80, 13);
  core::AlOptions options;
  options.n_test = 30;
  options.n_init = 12;
  options.max_iterations = 3;
  options.initial_fit.restarts = 0;
  options.initial_fit.max_opt_iterations = 10;
  options.refit.max_opt_iterations = 3;
  options.failures.plan = faults::FaultPlan::parse("cholesky.non_psd:p=1");

  const auto run_once = [&](std::uint64_t* degrades) {
    const core::AlSimulator sim(dataset, options);
    Rng rng(17);
    const std::uint64_t before =
        core::trace::global_report().counter("resilience.degrade_steps");
    const core::TrajectoryResult result = sim.run(core::RandGoodness(), rng);
    *degrades =
        core::trace::global_report().counter("resilience.degrade_steps") -
        before;
    return core::trajectory_to_csv(result);
  };
  std::uint64_t degrades_a = 0;
  std::uint64_t degrades_b = 0;
  const std::string a = run_once(&degrades_a);
  const std::string b = run_once(&degrades_b);
  core::trace::set_enabled(was_enabled);

  EXPECT_EQ(a, b);
  EXPECT_EQ(degrades_a, degrades_b);
  // Both models walked exact -> subset-of-data -> prior mean.
  EXPECT_GE(degrades_a, 4u);
}

// --- Online checkpoint halt/resume -----------------------------------------

std::filesystem::path online_ckpt_path(const char* name) {
  const std::filesystem::path p = std::filesystem::temp_directory_path() / name;
  remove_online_checkpoint(p, 8);
  return p;
}

TEST(OnlineCheckpointResume, HaltAndResumeMatchesUninterruptedRunByteForByte) {
  const auto reference = [] {
    OnlineAlDriver driver(unit_grid(8), synthetic_oracle, fast_options(3, 8));
    Rng rng(23);
    return driver.run(RandGoodness(), rng);
  }();

  const std::filesystem::path path =
      online_ckpt_path("alamr_online_resume.ckpt");
  CheckpointConfig cfg;
  cfg.path = path;
  cfg.stride = 2;
  cfg.halt_after_iterations = 5;
  {
    OnlineAlDriver driver(unit_grid(8), synthetic_oracle, fast_options(3, 8));
    Rng rng(23);
    const OnlineResult halted = driver.run(RandGoodness(), rng, &cfg);
    EXPECT_TRUE(halted.halted_at_checkpoint);
    EXPECT_EQ(halted.records.size(), 5u);
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  cfg.resume = true;
  cfg.halt_after_iterations = 0;
  OnlineAlDriver driver(unit_grid(8), synthetic_oracle, fast_options(3, 8));
  Rng rng(99);  // must be irrelevant: the checkpoint carries the rng state
  const OnlineResult resumed = driver.run(RandGoodness(), rng, &cfg);
  EXPECT_FALSE(resumed.halted_at_checkpoint);
  EXPECT_EQ(records_to_string(resumed), records_to_string(reference));
  EXPECT_EQ(driver.remaining_candidates(), 64u - 11u);
  ASSERT_TRUE(resumed.cost_model);
  EXPECT_TRUE(resumed.cost_model->fitted());
  remove_online_checkpoint(path);
}

TEST(OnlineCheckpointResume, ResumeSurvivesTornFinalSave) {
  // The halt-point save (the newest, most advanced generation) is torn
  // mid-write; resume must quarantine it, fall back to the previous
  // intact generation, replay the lost records, and still match the
  // uninterrupted run byte-for-byte.
  OnlineAlOptions options = fast_options(3, 8);
  // Saves before the halt-save land at records 2 and 4 (stride 2), so the
  // halt-save is the torn_write site's third consultation: hit 2.
  options.plan = faults::FaultPlan::parse("io.torn_write:hits=2");

  const auto reference = [&] {
    OnlineAlDriver driver(unit_grid(8), synthetic_oracle, options);
    Rng rng(23);
    return driver.run(RandGoodness(), rng);  // io.* never consulted: no saves
  }();

  const std::filesystem::path path = online_ckpt_path("alamr_online_torn.ckpt");
  CheckpointConfig cfg;
  cfg.path = path;
  cfg.stride = 2;
  cfg.halt_after_iterations = 5;
  {
    OnlineAlDriver driver(unit_grid(8), synthetic_oracle, options);
    Rng rng(23);
    const OnlineResult halted = driver.run(RandGoodness(), rng, &cfg);
    EXPECT_TRUE(halted.halted_at_checkpoint);
  }

  cfg.resume = true;
  cfg.halt_after_iterations = 0;
  OnlineAlDriver driver(unit_grid(8), synthetic_oracle, options);
  Rng rng(7);
  const OnlineResult resumed = driver.run(RandGoodness(), rng, &cfg);
  EXPECT_EQ(records_to_string(resumed), records_to_string(reference));
  // The torn generation was quarantined as forensic evidence.
  const std::filesystem::path bad = std::filesystem::path(path).concat(".bad");
  EXPECT_TRUE(std::filesystem::exists(bad));
  remove_online_checkpoint(path);
  std::error_code ec;
  std::filesystem::remove(bad, ec);
}

TEST(OnlineCheckpointResume, RejectsCheckpointFromDifferentConfiguration) {
  const std::filesystem::path path =
      online_ckpt_path("alamr_online_mismatch.ckpt");
  CheckpointConfig cfg;
  cfg.path = path;
  cfg.halt_after_iterations = 4;
  {
    OnlineAlDriver driver(unit_grid(8), synthetic_oracle, fast_options(3, 8));
    Rng rng(23);
    driver.run(RandGoodness(), rng, &cfg);
  }
  cfg.resume = true;
  cfg.halt_after_iterations = 0;
  // Different iteration budget => different fingerprint => refuse.
  OnlineAlDriver driver(unit_grid(8), synthetic_oracle, fast_options(3, 12));
  Rng rng(23);
  try {
    driver.run(RandGoodness(), rng, &cfg);
    FAIL() << "expected fingerprint mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("refusing to resume"),
              std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(std::filesystem::exists(path)) << "mismatch must keep the file";
  remove_online_checkpoint(path);
}

}  // namespace
