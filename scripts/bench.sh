#!/usr/bin/env bash
# Records the seed-vs-optimized micro-benchmark medians into per-PR JSON
# files: BENCH_PR3.json (distance cache / blocked linalg / incremental
# predict) and BENCH_PR5.json (fused batched posterior / arena pass /
# SIMD kernels).
#
# Each benchmark in the sets is registered twice: /0 replays the seed
# (pre-PR) recipe through the public reference APIs, /1 runs the
# optimized path.  Both arms live in the same binary so they share the
# compiler, flags, and process state.  We take the median over several
# repetitions because this box is a 1-vCPU VM with 10-30% run-to-run
# drift; medians over >= 5 repetitions are stable to a few percent.
#
# Usage: scripts/bench.sh [build-dir]     (default: build)

set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
repetitions="${ALAMR_BENCH_REPS:-7}"

if [[ ! -x "$build_dir/bench/bench_micro_perf" ]]; then
  cmake -B "$build_dir" -S . > /dev/null
  cmake --build "$build_dir" -j "$(nproc)" --target bench_micro_perf > /dev/null
fi

# record_set <output.json> <benchmark-filter-regex>
record_set() {
  local out_json="$1"
  local filter="$2"
  local raw
  raw=$(mktemp /tmp/bench_set.XXXXXX.json)

  "$build_dir/bench/bench_micro_perf" \
    --benchmark_filter="$filter" \
    --benchmark_repetitions="$repetitions" \
    --benchmark_report_aggregates_only=true \
    --benchmark_min_time=0.3 \
    --benchmark_out="$raw" --benchmark_out_format=json

  python3 - "$raw" "$repetitions" "$out_json" <<'EOF'
import json, sys

raw_path, reps, out_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]
with open(raw_path) as f:
    report = json.load(f)

# Collect medians, keyed by "BM_Name/size" with the trailing /0 (seed
# recipe) or /1 (optimized) arm split off. Median aggregates carry any
# user counters (e.g. BM_ArenaPass's allocs_per_iter) along. real_time
# is reported in each benchmark's own time_unit; normalize to ns.
TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
arms = {}
for b in report["benchmarks"]:
    name = b["name"]
    if not name.endswith("_median"):
        continue
    base = name[: -len("_median")]
    family, size, arm = base.rsplit("/", 2)
    entry = {"real_time": b["real_time"] * TO_NS[b.get("time_unit", "ns")]}
    entry.update({k: v for k, v in b.items()
                  if k == "allocs_per_iter"})
    arms.setdefault(f"{family}/{size}", {})[arm] = entry

out = {
    "generated_by": "scripts/bench.sh",
    "repetitions": reps,
    "statistic": "median real_time, ns/op",
    "context": {
        "host": report["context"].get("host_name", ""),
        "num_cpus": report["context"].get("num_cpus"),
        "mhz_per_cpu": report["context"].get("mhz_per_cpu"),
    },
    "benchmarks": {},
}
for key in sorted(arms):
    pair = arms[key]
    if "0" not in pair or "1" not in pair:
        continue
    base_ns, opt_ns = pair["0"]["real_time"], pair["1"]["real_time"]
    row = {
        "seed_recipe_ns": round(base_ns, 1),
        "optimized_ns": round(opt_ns, 1),
        "speedup": round(base_ns / opt_ns, 2),
    }
    if "allocs_per_iter" in pair["0"]:
        row["seed_allocs_per_iter"] = round(pair["0"]["allocs_per_iter"], 1)
    if "allocs_per_iter" in pair["1"]:
        row["optimized_allocs_per_iter"] = round(pair["1"]["allocs_per_iter"], 1)
    out["benchmarks"][key] = row

with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

width = max(len(k) for k in out["benchmarks"])
print(f"\n{'benchmark':{width}}  {'seed ns/op':>12}  {'opt ns/op':>12}  speedup")
for key, row in out["benchmarks"].items():
    print(f"{key:{width}}  {row['seed_recipe_ns']:>12.0f}  "
          f"{row['optimized_ns']:>12.0f}  {row['speedup']:>6.2f}x")
print(f"\nwrote {out_path}")
EOF
  rm -f "$raw"
}

record_set BENCH_PR3.json \
  'BM_(KernelDistanceCache|BlockedCholesky|CholeskyInverse|RefitObjective|RefitObjectiveValue|IncrementalPredict)/'

record_set BENCH_PR5.json \
  'BM_(PredictBatch|ArenaPass|SimdKernels)/'
