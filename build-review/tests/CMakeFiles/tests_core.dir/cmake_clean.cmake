file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/test_core_batch.cpp.o"
  "CMakeFiles/tests_core.dir/test_core_batch.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_core_export.cpp.o"
  "CMakeFiles/tests_core.dir/test_core_export.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_core_metrics.cpp.o"
  "CMakeFiles/tests_core.dir/test_core_metrics.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_core_online.cpp.o"
  "CMakeFiles/tests_core.dir/test_core_online.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_core_parallel.cpp.o"
  "CMakeFiles/tests_core.dir/test_core_parallel.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_core_simulator.cpp.o"
  "CMakeFiles/tests_core.dir/test_core_simulator.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_core_strategies.cpp.o"
  "CMakeFiles/tests_core.dir/test_core_strategies.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_core_trace.cpp.o"
  "CMakeFiles/tests_core.dir/test_core_trace.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
