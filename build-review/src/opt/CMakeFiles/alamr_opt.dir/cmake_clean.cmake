file(REMOVE_RECURSE
  "CMakeFiles/alamr_opt.dir/lbfgs.cpp.o"
  "CMakeFiles/alamr_opt.dir/lbfgs.cpp.o.d"
  "CMakeFiles/alamr_opt.dir/multistart.cpp.o"
  "CMakeFiles/alamr_opt.dir/multistart.cpp.o.d"
  "CMakeFiles/alamr_opt.dir/nelder_mead.cpp.o"
  "CMakeFiles/alamr_opt.dir/nelder_mead.cpp.o.d"
  "CMakeFiles/alamr_opt.dir/objective.cpp.o"
  "CMakeFiles/alamr_opt.dir/objective.cpp.o.d"
  "libalamr_opt.a"
  "libalamr_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alamr_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
