// Scalar kernel table: strictly-sequential single-chain IEEE loops,
// byte-identical to the historical inline kernels in matrix.hpp (the seed
// recipe). Compiled with the project-wide -ffp-contract=off, so no FMA
// contraction can sneak in even under -march=native — this is what makes
// ALAMR_SIMD_LEVEL=scalar reproduce the byte goldens whatever the build.

#include <cstddef>

#include "alamr/linalg/simd.hpp"

namespace alamr::linalg::simd::detail {

namespace {

double scalar_dot(const double* x, const double* y, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += x[i] * y[i];
  return total;
}

double scalar_squared_distance(const double* x, const double* y,
                               std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - y[i];
    total += d * d;
  }
  return total;
}

void scalar_axpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scalar_rank1_sub(double alpha, const double* x, double* y,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= alpha * x[i];
}

}  // namespace

constinit const KernelTable kScalarTable = {
    scalar_dot, scalar_squared_distance, scalar_axpy, scalar_rank1_sub};

}  // namespace alamr::linalg::simd::detail
