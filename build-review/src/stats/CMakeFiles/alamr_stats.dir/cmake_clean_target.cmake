file(REMOVE_RECURSE
  "libalamr_stats.a"
)
