file(REMOVE_RECURSE
  "CMakeFiles/tests_opt.dir/test_opt_lbfgs.cpp.o"
  "CMakeFiles/tests_opt.dir/test_opt_lbfgs.cpp.o.d"
  "CMakeFiles/tests_opt.dir/test_opt_multistart.cpp.o"
  "CMakeFiles/tests_opt.dir/test_opt_multistart.cpp.o.d"
  "CMakeFiles/tests_opt.dir/test_opt_nelder_mead.cpp.o"
  "CMakeFiles/tests_opt.dir/test_opt_nelder_mead.cpp.o.d"
  "tests_opt"
  "tests_opt.pdb"
  "tests_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
