#include "alamr/linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace alamr::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

double dot(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: length mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) total += x[i] * y[i];
  return total;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double squared_distance(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("squared_distance: length mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    total += d * d;
  }
  return total;
}

Vector matvec(const Matrix& a, std::span<const double> x) {
  if (a.cols() != x.size()) throw std::invalid_argument("matvec: shape mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    y[i] = dot(a.row(i), x);
  }
  return y;
}

Vector matvec_transposed(const Matrix& a, std::span<const double> x) {
  if (a.rows() != x.size()) {
    throw std::invalid_argument("matvec_transposed: shape mismatch");
  }
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    axpy(x[i], a.row(i), y);
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous in both B and C.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto ci = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      axpy(aik, b.row(k), ci);
    }
  }
  return c;
}

Matrix aat(const Matrix& a) {
  Matrix c(a.rows(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = dot(a.row(i), a.row(j));
      c(i, j) = v;
      c(j, i) = v;
    }
  }
  return c;
}

double frobenius_inner(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("frobenius_inner: shape mismatch");
  }
  return dot(a.data(), b.data());
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    worst = std::max(worst, std::abs(da[i] - db[i]));
  }
  return worst;
}

}  // namespace alamr::linalg
