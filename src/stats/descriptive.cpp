#include "alamr/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace alamr::stats {

namespace {

void require_nonempty_finite(std::span<const double> values, const char* what) {
  if (values.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty input");
  }
  for (const double v : values) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument(std::string(what) + ": non-finite input");
    }
  }
}

std::vector<double> sorted_copy(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> values, double q) {
  require_nonempty_finite(values, "quantile");
  const auto sorted = sorted_copy(values);
  return quantile_sorted(sorted, q);
}

double mean(std::span<const double> values) {
  require_nonempty_finite(values, "mean");
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

double variance(std::span<const double> values) {
  require_nonempty_finite(values, "variance");
  if (values.size() < 2) return 0.0;
  Welford acc;
  for (const double v : values) acc.add(v);
  return acc.variance();
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double skewness(std::span<const double> values) {
  require_nonempty_finite(values, "skewness");
  const std::size_t n = values.size();
  if (n < 3) return 0.0;
  const double mu = mean(values);
  double m2 = 0.0;
  double m3 = 0.0;
  for (const double v : values) {
    const double d = v - mu;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  const double g1 = m3 / std::pow(m2, 1.5);
  const double nd = static_cast<double>(n);
  return g1 * std::sqrt(nd * (nd - 1.0)) / (nd - 2.0);
}

double rms(std::span<const double> residuals) {
  require_nonempty_finite(residuals, "rms");
  double total = 0.0;
  for (const double e : residuals) total += e * e;
  return std::sqrt(total / static_cast<double>(residuals.size()));
}

double standard_normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double standard_normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

Summary summarize(std::span<const double> values) {
  require_nonempty_finite(values, "summarize");
  const auto sorted = sorted_copy(values);
  Summary s;
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.q25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.5);
  s.q75 = quantile_sorted(sorted, 0.75);
  s.mean = mean(values);
  s.stddev = stddev(values);
  return s;
}

void Welford::add(double value) noexcept {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Welford::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace alamr::stats
