// Tests for the Dataset container.

#include "alamr/data/dataset.hpp"

#include <gtest/gtest.h>

namespace {

using namespace alamr::data;
using alamr::linalg::Matrix;

Dataset small_dataset() {
  Dataset d;
  d.feature_names = {"a", "b"};
  d.x = Matrix{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  d.wallclock = {10.0, 20.0, 30.0};
  d.cost = {0.1, 0.2, 0.3};
  d.memory = {1.0, 2.0, 3.0};
  return d;
}

TEST(Dataset, ValidatePassesOnConsistentData) {
  EXPECT_NO_THROW(small_dataset().validate());
}

TEST(Dataset, ValidateCatchesMismatch) {
  Dataset d = small_dataset();
  d.cost.pop_back();
  EXPECT_THROW(d.validate(), std::invalid_argument);

  Dataset e = small_dataset();
  e.feature_names.push_back("extra");
  EXPECT_THROW(e.validate(), std::invalid_argument);
}

TEST(Dataset, SizeAndDim) {
  const Dataset d = small_dataset();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.dim(), 2u);
}

TEST(Dataset, SubsetSelectsAndReorders) {
  const Dataset d = small_dataset();
  const std::vector<std::size_t> rows{2, 0};
  const Dataset s = d.subset(rows);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.x(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s.x(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.cost[0], 0.3);
  EXPECT_DOUBLE_EQ(s.memory[1], 1.0);
  EXPECT_EQ(s.feature_names, d.feature_names);
}

TEST(Dataset, SubsetOutOfRangeThrows) {
  const Dataset d = small_dataset();
  const std::vector<std::size_t> rows{5};
  EXPECT_THROW(d.subset(rows), std::out_of_range);
}

TEST(Dataset, DesignSubset) {
  const Dataset d = small_dataset();
  const std::vector<std::size_t> rows{1};
  const Matrix m = d.design_subset(rows);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_DOUBLE_EQ(m(0, 1), 4.0);
}

}  // namespace
