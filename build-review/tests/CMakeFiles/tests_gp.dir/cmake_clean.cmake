file(REMOVE_RECURSE
  "CMakeFiles/tests_gp.dir/test_gp_gpr.cpp.o"
  "CMakeFiles/tests_gp.dir/test_gp_gpr.cpp.o.d"
  "CMakeFiles/tests_gp.dir/test_gp_gradients.cpp.o"
  "CMakeFiles/tests_gp.dir/test_gp_gradients.cpp.o.d"
  "CMakeFiles/tests_gp.dir/test_gp_kernels.cpp.o"
  "CMakeFiles/tests_gp.dir/test_gp_kernels.cpp.o.d"
  "CMakeFiles/tests_gp.dir/test_gp_local.cpp.o"
  "CMakeFiles/tests_gp.dir/test_gp_local.cpp.o.d"
  "tests_gp"
  "tests_gp.pdb"
  "tests_gp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
