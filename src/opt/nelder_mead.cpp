#include "alamr/opt/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace alamr::opt {

namespace {

struct Vertex {
  std::vector<double> x;
  double value = 0.0;
};

double value_spread(const std::vector<Vertex>& simplex) {
  const auto [lo, hi] = std::minmax_element(
      simplex.begin(), simplex.end(),
      [](const Vertex& a, const Vertex& b) { return a.value < b.value; });
  return hi->value - lo->value;
}

double vertex_spread(const std::vector<Vertex>& simplex) {
  double worst = 0.0;
  const auto& best = simplex.front().x;
  for (const auto& v : simplex) {
    for (std::size_t i = 0; i < best.size(); ++i) {
      worst = std::max(worst, std::abs(v.x[i] - best[i]));
    }
  }
  return worst;
}

}  // namespace

NelderMeadResult nelder_mead_minimize(const Objective& f,
                                      std::span<const double> x0,
                                      const NelderMeadOptions& options,
                                      const Bounds& bounds) {
  if (x0.empty()) throw std::invalid_argument("nelder_mead: empty start point");
  bounds.validate(x0.size());
  const std::size_t dim = x0.size();

  NelderMeadResult result;

  auto evaluate = [&](std::vector<double>& x) {
    bounds.project(x);
    ++result.evaluations;
    return f(x, {});
  };

  // Initial simplex: x0 plus one vertex displaced along each axis.
  std::vector<Vertex> simplex(dim + 1);
  simplex[0].x.assign(x0.begin(), x0.end());
  simplex[0].value = evaluate(simplex[0].x);
  for (std::size_t i = 0; i < dim; ++i) {
    simplex[i + 1].x.assign(x0.begin(), x0.end());
    simplex[i + 1].x[i] +=
        options.initial_step * std::max(1.0, std::abs(x0[i]));
    simplex[i + 1].value = evaluate(simplex[i + 1].x);
  }

  std::vector<double> centroid(dim);
  std::vector<double> probe(dim);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.value < b.value; });

    if (value_spread(simplex) < options.f_tolerance ||
        vertex_spread(simplex) < options.x_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all vertices except the worst.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t v = 0; v < dim; ++v) {
      for (std::size_t i = 0; i < dim; ++i) centroid[i] += simplex[v].x[i];
    }
    for (double& c : centroid) c /= static_cast<double>(dim);

    Vertex& worst = simplex.back();

    // Reflection.
    for (std::size_t i = 0; i < dim; ++i) {
      probe[i] = centroid[i] + options.reflection * (centroid[i] - worst.x[i]);
    }
    std::vector<double> reflected = probe;
    const double reflected_value = evaluate(reflected);

    if (reflected_value < simplex.front().value) {
      // Expansion.
      for (std::size_t i = 0; i < dim; ++i) {
        probe[i] = centroid[i] + options.expansion * (reflected[i] - centroid[i]);
      }
      std::vector<double> expanded = probe;
      const double expanded_value = evaluate(expanded);
      if (expanded_value < reflected_value) {
        worst.x = std::move(expanded);
        worst.value = expanded_value;
      } else {
        worst.x = std::move(reflected);
        worst.value = reflected_value;
      }
      continue;
    }

    if (reflected_value < simplex[dim - 1].value) {
      worst.x = std::move(reflected);
      worst.value = reflected_value;
      continue;
    }

    // Contraction (outside if reflection improved on the worst, else inside).
    const bool outside = reflected_value < worst.value;
    const auto& toward = outside ? reflected : worst.x;
    for (std::size_t i = 0; i < dim; ++i) {
      probe[i] = centroid[i] + options.contraction * (toward[i] - centroid[i]);
    }
    std::vector<double> contracted = probe;
    const double contracted_value = evaluate(contracted);
    if (contracted_value < std::min(reflected_value, worst.value)) {
      worst.x = std::move(contracted);
      worst.value = contracted_value;
      continue;
    }

    // Shrink toward the best vertex.
    for (std::size_t v = 1; v <= dim; ++v) {
      for (std::size_t i = 0; i < dim; ++i) {
        simplex[v].x[i] = simplex[0].x[i] +
                          options.shrink * (simplex[v].x[i] - simplex[0].x[i]);
      }
      simplex[v].value = evaluate(simplex[v].x);
    }
  }

  std::sort(simplex.begin(), simplex.end(),
            [](const Vertex& a, const Vertex& b) { return a.value < b.value; });
  result.x = simplex.front().x;
  result.value = simplex.front().value;
  return result;
}

}  // namespace alamr::opt
