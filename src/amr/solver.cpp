#include "alamr/amr/solver.hpp"

#include <algorithm>
#include <stdexcept>

namespace alamr::amr {

FvSolver::FvSolver(const ShockBubbleProblem& problem) : mesh_(problem) {}

void FvSolver::step(double dt) {
  if (mesh_.problem().order == SpatialOrder::kSecondOrder) {
    // Dimensional splitting with alternating sweep order (symmetrized);
    // ghosts are refilled between sweeps so cross-patch data is current.
    const bool x_first = (step_parity_++ % 2) == 0;
    sweep_second_order(dt, x_first);
    mesh_.fill_ghosts();
    sweep_second_order(dt, !x_first);
    return;
  }
  step_first_order(dt);
}

void FvSolver::step_first_order(double dt) {
  mesh_.for_each_leaf([&](Patch& patch) {
    const int mx = patch.mx();
    const double h = mesh_.cell_size(patch.key().level);
    const double lambda = dt / h;

    // Snapshot including ghosts (updates must read pre-step values) and
    // cache primitive conversions: each cell's primitives are used by up
    // to four face fluxes.
    const bool hllc = mesh_.problem().riemann == RiemannSolver::kHllc;
    const auto face_flux = [hllc](const Cons& l, const Prim& pl, const Cons& r,
                                  const Prim& pr) {
      return hllc ? hllc_flux_x(l, pl, r, pr) : hll_flux_x(l, pl, r, pr);
    };
    const std::size_t stride = static_cast<std::size_t>(mx + 2);
    scratch_.resize(stride * stride);
    prims_.resize(stride * stride);
    for (int j = -1; j <= mx; ++j) {
      for (int i = -1; i <= mx; ++i) {
        const std::size_t idx = static_cast<std::size_t>(j + 1) * stride +
                                static_cast<std::size_t>(i + 1);
        scratch_[idx] = patch.at(i, j);
        prims_[idx] = to_primitive(scratch_[idx]);
      }
    }
    const auto at = [&](int i, int j) -> std::size_t {
      return static_cast<std::size_t>(j + 1) * stride +
             static_cast<std::size_t>(i + 1);
    };

    // x-sweep: each face flux computed once, differenced into the update.
    for (int j = 0; j < mx; ++j) {
      Cons prev = face_flux(scratch_[at(-1, j)], prims_[at(-1, j)],
                            scratch_[at(0, j)], prims_[at(0, j)]);
      for (int i = 0; i < mx; ++i) {
        const Cons next = face_flux(scratch_[at(i, j)], prims_[at(i, j)],
                                    scratch_[at(i + 1, j)], prims_[at(i + 1, j)]);
        patch.at(i, j) = scratch_[at(i, j)] - (next - prev) * lambda;
        prev = next;
      }
    }

    // y-sweep: solved as an x-problem with momentum components swapped.
    const auto rotate = [](const Cons& c) -> Cons {
      return {c.rho, c.my, c.mx, c.e};
    };
    const auto rotate_prim = [](const Prim& w) -> Prim {
      return {w.rho, w.v, w.u, w.p};
    };
    for (int i = 0; i < mx; ++i) {
      Cons prev = face_flux(rotate(scratch_[at(i, -1)]), rotate_prim(prims_[at(i, -1)]),
                            rotate(scratch_[at(i, 0)]), rotate_prim(prims_[at(i, 0)]));
      for (int j = 0; j < mx; ++j) {
        const Cons next =
            face_flux(rotate(scratch_[at(i, j)]), rotate_prim(prims_[at(i, j)]),
                      rotate(scratch_[at(i, j + 1)]), rotate_prim(prims_[at(i, j + 1)]));
        const Cons diff = next - prev;
        // Un-rotate the flux difference back to (mx, my) ordering.
        Cons& cell = patch.at(i, j);
        cell.rho -= lambda * diff.rho;
        cell.mx -= lambda * diff.my;
        cell.my -= lambda * diff.mx;
        cell.e -= lambda * diff.e;
        prev = next;
      }
    }
  });
}

namespace {

/// Componentwise minmod of two slopes.
Cons minmod(const Cons& a, const Cons& b) noexcept {
  const auto mm = [](double p, double q) {
    if (p > 0.0 && q > 0.0) return std::min(p, q);
    if (p < 0.0 && q < 0.0) return std::max(p, q);
    return 0.0;
  };
  return {mm(a.rho, b.rho), mm(a.mx, b.mx), mm(a.my, b.my), mm(a.e, b.e)};
}

/// True when the state is physically usable (positive density/pressure
/// without relying on the conversion floors).
bool physical(const Cons& c) noexcept {
  if (!(c.rho > 1e-8)) return false;
  const double kinetic = 0.5 * (c.mx * c.mx + c.my * c.my) / c.rho;
  return (kGamma - 1.0) * (c.e - kinetic) > 1e-10;
}

}  // namespace

void FvSolver::sweep_second_order(double dt, bool x_direction) {
  const bool hllc = mesh_.problem().riemann == RiemannSolver::kHllc;
  mesh_.for_each_leaf([&](Patch& patch) {
    const int mx = patch.mx();
    const double h = mesh_.cell_size(patch.key().level);
    const double lambda = dt / h;

    // 1-D pencil state: cells -2 .. mx+1 (two ghosts each side).
    std::vector<Cons> pencil(static_cast<std::size_t>(mx + 4));
    std::vector<Cons> left_face(static_cast<std::size_t>(mx + 4));   // u at cell's left face
    std::vector<Cons> right_face(static_cast<std::size_t>(mx + 4));  // u at cell's right face
    std::vector<Cons> flux(static_cast<std::size_t>(mx + 1));

    const auto rotate = [&](const Cons& c) -> Cons {
      return x_direction ? c : Cons{c.rho, c.my, c.mx, c.e};
    };
    const auto load = [&](int pencil_index, int k) {
      // pencil cell k in [-2, mx+1] stored at k+2.
      for (int c = -2; c < mx + 2; ++c) {
        const Cons& cell =
            x_direction ? patch.at(c, pencil_index) : patch.at(pencil_index, c);
        pencil[static_cast<std::size_t>(c + 2)] = rotate(cell);
      }
      (void)k;
    };

    for (int p = 0; p < mx; ++p) {
      load(p, 0);

      // MUSCL reconstruction + Hancock predictor for cells -1 .. mx.
      for (int k = -1; k <= mx; ++k) {
        const Cons& um = pencil[static_cast<std::size_t>(k + 1)];
        const Cons& u0 = pencil[static_cast<std::size_t>(k + 2)];
        const Cons& up = pencil[static_cast<std::size_t>(k + 3)];
        const Cons slope = minmod(u0 - um, up - u0);
        Cons ul = u0 - slope * 0.5;
        Cons ur = u0 + slope * 0.5;
        if (physical(ul) && physical(ur)) {
          // Hancock half-step with physical fluxes of the face values.
          const Cons correction =
              (flux_x(ur) - flux_x(ul)) * (0.5 * lambda);
          const Cons ul_half = ul - correction;
          const Cons ur_half = ur - correction;
          if (physical(ul_half) && physical(ur_half)) {
            ul = ul_half;
            ur = ur_half;
          }
        } else {
          // Fall back to first order locally (slope dropped).
          ul = u0;
          ur = u0;
        }
        left_face[static_cast<std::size_t>(k + 2)] = ul;
        right_face[static_cast<std::size_t>(k + 2)] = ur;
      }

      // Riemann problems at faces k+1/2 for k = -1 .. mx-1.
      for (int k = -1; k < mx; ++k) {
        const Cons& l = right_face[static_cast<std::size_t>(k + 2)];
        const Cons& r = left_face[static_cast<std::size_t>(k + 3)];
        flux[static_cast<std::size_t>(k + 1)] =
            hllc ? hllc_flux_x(l, r) : hll_flux_x(l, r);
      }

      // Conservative update of the interior pencil cells.
      for (int k = 0; k < mx; ++k) {
        const Cons diff = (flux[static_cast<std::size_t>(k + 1)] -
                           flux[static_cast<std::size_t>(k)]) * lambda;
        Cons& cell = x_direction ? patch.at(k, p) : patch.at(p, k);
        if (x_direction) {
          cell = cell - diff;
        } else {
          // Un-rotate the flux difference back to (mx, my) ordering.
          cell.rho -= diff.rho;
          cell.mx -= diff.my;
          cell.my -= diff.mx;
          cell.e -= diff.e;
        }
      }
    }
  });
}

SolverStats FvSolver::run(std::size_t max_steps) {
  if (ran_) throw std::logic_error("FvSolver::run: already ran");
  ran_ = true;

  SolverStats stats;
  stats.initial_mass = mesh_.total_mass();
  stats.peak_cells = mesh_.total_cells();
  stats.peak_leaves = mesh_.leaf_count();

  stats.epochs.push_back(EpochProfile{mesh_.topology(), 0});

  const ShockBubbleProblem& problem = mesh_.problem();
  double t = 0.0;
  while (t < problem.final_time && stats.steps < max_steps) {
    mesh_.fill_ghosts();
    double dt = mesh_.compute_dt();
    if (t + dt > problem.final_time) dt = problem.final_time - t;
    step(dt);
    t += dt;
    ++stats.steps;
    stats.epochs.back().steps += 1;
    stats.total_cell_updates += mesh_.total_cells();

    if (stats.steps % static_cast<std::size_t>(problem.regrid_interval) == 0 &&
        t < problem.final_time) {
      const std::size_t changed = mesh_.regrid();
      if (changed > 0) {
        ++stats.regrids;
        stats.epochs.push_back(EpochProfile{mesh_.topology(), 0});
        stats.peak_cells = std::max(stats.peak_cells, mesh_.total_cells());
        stats.peak_leaves = std::max(stats.peak_leaves, mesh_.leaf_count());
      }
    }
  }

  stats.final_time = t;
  stats.final_mass = mesh_.total_mass();
  stats.finest_level = mesh_.finest_level();
  stats.final_leaves_per_level = mesh_.leaves_per_level();

  // Drop a trailing zero-step epoch left by a regrid on the last step.
  if (!stats.epochs.empty() && stats.epochs.back().steps == 0 &&
      stats.epochs.size() > 1) {
    stats.epochs.pop_back();
  }
  return stats;
}

}  // namespace alamr::amr
