#pragma once

// Simulated parallel machine (substitute for NERSC Edison + SLURM).
//
// One physics run (SolverStats) is priced under a node count p: leaves are
// partitioned across MPI ranks along the space-filling curve (p4est
// style), per-step time is the slowest rank's compute plus its ghost
// exchange plus a global dt-reduction, and MaxRSS per process is the
// largest rank's working-set estimate. Constants are calibrated so the
// resulting dataset spans the same orders of magnitude as the paper's
// Table I; the *mechanisms* (SFC partition granularity, load imbalance,
// surface-to-volume communication, startup overhead) are modeled, not
// curve-fitted.

#include <cstddef>
#include <vector>

#include "alamr/amr/solver.hpp"
#include "alamr/stats/rng.hpp"

namespace alamr::amr {

struct MachineSpec {
  int cores_per_node = 24;            // Edison: two 12-core Ivy Bridge sockets
  double cell_update_seconds = 4e-4;  // per cell-update per rank (includes
                                      // the full Clawpack-style flux work the
                                      // real code performs per cell)
  double latency_seconds = 2e-5;      // per message (MPI + Aries)
  double bandwidth_bytes_per_second = 1e9;  // per rank
  double bytes_per_ghost_cell = 32.0;       // 4 doubles
  double reduction_latency_seconds = 1e-5;  // allreduce term, x log2(ranks)
  double regrid_seconds_per_cell = 1e-5;    // flagging + rebuild + repartition
  double startup_seconds = 1.5;             // srun + MPI_Init + I/O
  double startup_seconds_per_rank = 0.002;

  // MaxRSS accounting: state + ghosts + workspace + solver tables per cell,
  // patch metadata, and the partition's share — max over ranks is reported.
  double bytes_per_cell_memory = 4096.0;
  double bytes_per_patch_overhead = 2048.0;

  // Run-to-run variability (the paper keeps replicate measurements to
  // capture machine noise): multiplicative lognormal on wallclock, smaller
  // on memory.
  double wallclock_noise_sigma = 0.06;
  double memory_noise_sigma = 0.02;
};

/// SLURM-accounting-style record of one job.
struct JobResult {
  double wallclock_seconds = 0.0;
  double cost_node_hours = 0.0;
  double maxrss_mb = 0.0;

  // Diagnostics (not part of the dataset; used by tests and examples).
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;
  double regrid_seconds = 0.0;
  double startup_seconds = 0.0;
  double load_imbalance = 1.0;  // max over ranks / mean, cell-weighted
};

/// Contiguous SFC partition of leaves into `ranks` parts, balanced by
/// cell count. Returns the rank of each leaf (leaf order = SFC order).
std::vector<std::size_t> sfc_partition(const std::vector<std::size_t>& cells,
                                       std::size_t ranks);

/// Prices one physics run on `nodes` nodes. `rng` drives measurement noise;
/// pass the same seed to reproduce a "measurement".
JobResult simulate_job(const SolverStats& stats, int nodes,
                       const MachineSpec& spec, stats::Rng& rng);

}  // namespace alamr::amr
