// Tests for the derivative-free Nelder–Mead fallback optimizer.

#include "alamr/opt/nelder_mead.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::opt;
using alamr::stats::Rng;

Objective sphere(std::vector<double> target) {
  return [target = std::move(target)](std::span<const double> x,
                                      std::span<double>) {
    double value = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - target[i];
      value += d * d;
    }
    return value;
  };
}

TEST(NelderMead, MinimizesSphere) {
  const auto result =
      nelder_mead_minimize(sphere({1.0, -2.0}), std::vector<double>{5.0, 5.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], -2.0, 1e-3);
}

TEST(NelderMead, OneDimensional) {
  const auto result =
      nelder_mead_minimize(sphere({3.0}), std::vector<double>{-10.0});
  EXPECT_NEAR(result.x[0], 3.0, 1e-3);
}

TEST(NelderMead, HandlesNonSmoothObjective) {
  // |x| + |y| — no gradient at the optimum; NM should still find it.
  const Objective f = [](std::span<const double> x, std::span<double>) {
    return std::abs(x[0]) + std::abs(x[1]);
  };
  const auto result = nelder_mead_minimize(f, std::vector<double>{2.0, -3.0});
  EXPECT_NEAR(result.x[0], 0.0, 1e-2);
  EXPECT_NEAR(result.x[1], 0.0, 1e-2);
}

TEST(NelderMead, RespectsBounds) {
  Bounds bounds;
  bounds.lower = {1.0};
  bounds.upper = {4.0};
  const auto result =
      nelder_mead_minimize(sphere({-5.0}), std::vector<double>{2.0}, {}, bounds);
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
}

TEST(NelderMead, HonorsIterationBudget) {
  NelderMeadOptions options;
  options.max_iterations = 3;
  options.f_tolerance = 0.0;
  options.x_tolerance = 0.0;
  const auto result =
      nelder_mead_minimize(sphere({0.0, 0.0}), std::vector<double>{9.0, 9.0},
                           options);
  EXPECT_LE(result.iterations, 3u);
  EXPECT_FALSE(result.converged);
}

TEST(NelderMead, EmptyStartThrows) {
  EXPECT_THROW(nelder_mead_minimize(sphere({}), std::vector<double>{}),
               std::invalid_argument);
}

TEST(NelderMead, CountsEvaluations) {
  const auto result =
      nelder_mead_minimize(sphere({0.0}), std::vector<double>{1.0});
  EXPECT_GT(result.evaluations, 2u);
}

// Property: NM from random starts reaches the sphere minimum.
class NelderMeadRandomStarts : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NelderMeadRandomStarts, SphereSolved) {
  Rng rng(GetParam());
  const std::size_t dim = 1 + rng.uniform_index(4);
  std::vector<double> target(dim);
  std::vector<double> x0(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    target[i] = rng.uniform(-2.0, 2.0);
    x0[i] = rng.uniform(-5.0, 5.0);
  }
  NelderMeadOptions options;
  options.max_iterations = 2000;
  const auto result = nelder_mead_minimize(sphere(target), x0, options);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(result.x[i], target[i], 5e-3) << "dim " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NelderMeadRandomStarts,
                         ::testing::Values(4ULL, 8ULL, 15ULL, 16ULL, 23ULL));

}  // namespace
