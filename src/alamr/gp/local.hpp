#pragma once

// Local Gaussian-process ensembles (paper Sec. VI future work: "train
// multiple local performance models simultaneously ... in the context of
// Adaptive Mesh Refinement simulations", citing locally-weighted
// approaches [22]).
//
// The input space is split by a user-provided labeling function — for AMR
// performance data a natural choice is the maxlevel feature, since each
// level multiplies the work by a near-constant factor — and an
// independent GPR is fitted per region. Predictions dispatch to the
// region's model; a global model fitted on everything serves as the
// fallback for regions unseen during training. Region fits are smaller
// (O(n_k^3) each), so the ensemble is also cheaper than one big GPR.

#include <functional>
#include <map>

#include "alamr/gp/gpr.hpp"

namespace alamr::gp {

/// Maps a feature row to a region label.
using RegionLabeler = std::function<int(std::span<const double>)>;

class LocalGprEnsemble {
 public:
  /// `prototype` supplies the kernel structure for every region model
  /// (each region clones it and evolves its own hyperparameters).
  LocalGprEnsemble(std::unique_ptr<Kernel> prototype, RegionLabeler labeler,
                   GprOptions options = {});

  /// Fits one GPR per region with at least `min_region_size` samples
  /// (smaller regions fold into the global fallback model, which is always
  /// fitted on all data).
  void fit(const Matrix& x, std::span<const double> y, stats::Rng& rng,
           std::size_t min_region_size = 5);

  /// Posterior mean/stddev; each query row dispatches to its region's
  /// model, or the global fallback when the region has no model.
  Prediction predict(const Matrix& x) const;

  bool fitted() const noexcept { return global_.has_value(); }
  std::size_t region_count() const noexcept { return regions_.size(); }

  /// Labels that received their own model (sorted).
  std::vector<int> region_labels() const;

  /// The region model for a label; throws std::out_of_range if absent.
  const GaussianProcessRegressor& region_model(int label) const;

 private:
  std::unique_ptr<Kernel> prototype_;
  RegionLabeler labeler_;
  GprOptions options_;
  std::optional<GaussianProcessRegressor> global_;
  std::map<int, GaussianProcessRegressor> regions_;
};

}  // namespace alamr::gp
