#include "alamr/data/dataset.hpp"

#include <stdexcept>

namespace alamr::data {

void Dataset::validate() const {
  const std::size_t n = x.rows();
  if (wallclock.size() != n || cost.size() != n || memory.size() != n) {
    throw std::invalid_argument("Dataset: response length mismatch");
  }
  if (!feature_names.empty() && feature_names.size() != x.cols()) {
    throw std::invalid_argument("Dataset: feature_names length mismatch");
  }
}

Dataset Dataset::subset(std::span<const std::size_t> rows) const {
  Dataset out;
  out.feature_names = feature_names;
  out.x = Matrix(rows.size(), x.cols());
  out.wallclock.reserve(rows.size());
  out.cost.reserve(rows.size());
  out.memory.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::size_t src = rows[r];
    if (src >= size()) throw std::out_of_range("Dataset::subset: row out of range");
    for (std::size_t c = 0; c < x.cols(); ++c) out.x(r, c) = x(src, c);
    out.wallclock.push_back(wallclock[src]);
    out.cost.push_back(cost[src]);
    out.memory.push_back(memory[src]);
  }
  return out;
}

Matrix Dataset::design_subset(std::span<const std::size_t> rows) const {
  Matrix out(rows.size(), x.cols());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::size_t src = rows[r];
    if (src >= size()) {
      throw std::out_of_range("Dataset::design_subset: row out of range");
    }
    for (std::size_t c = 0; c < x.cols(); ++c) out(r, c) = x(src, c);
  }
  return out;
}

}  // namespace alamr::data
