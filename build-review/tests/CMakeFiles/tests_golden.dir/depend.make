# Empty dependencies file for tests_golden.
# This may be replaced when dependencies are built.
