#include "alamr/core/checkpoint.hpp"

#include <bit>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace alamr::core {

namespace {

// ---- JSON writing --------------------------------------------------------
// Doubles are stored as the hex image of their 64 bits ("0x3ff0..."): text
// round-trips are exact, NaN/inf included, independent of locale and
// printf precision.

std::string hex_bits(double v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return buffer;
}

double bits_from_hex(const std::string& text) {
  if (text.size() != 18 || text[0] != '0' || text[1] != 'x') {
    throw std::runtime_error("checkpoint: bad double bit pattern '" + text +
                             "'");
  }
  std::uint64_t bits = 0;
  for (std::size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<std::uint64_t>(c - 'A' + 10);
    else throw std::runtime_error("checkpoint: bad hex digit in '" + text + "'");
    bits = (bits << 4) | digit;
  }
  return std::bit_cast<double>(bits);
}

void write_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default: os << c; break;
    }
  }
  os << '"';
}

template <typename T>
void write_u64_array(std::ostringstream& os, const char* key,
                     const T& values) {
  os << '"' << key << "\":[";
  bool first = true;
  for (const auto v : values) {
    os << (first ? "" : ",") << static_cast<std::uint64_t>(v);
    first = false;
  }
  os << ']';
}

void write_double_array(std::ostringstream& os, const char* key,
                        const std::vector<double>& values) {
  os << '"' << key << "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << (i == 0 ? "" : ",") << '"' << hex_bits(values[i]) << '"';
  }
  os << ']';
}

// ---- JSON parsing --------------------------------------------------------
// A minimal recursive-descent parser for the subset this file emits:
// objects, arrays, strings, unsigned integers, true/false. Good enough to
// reject truncated or hand-mangled files with a clear error.

struct JsonValue {
  enum class Type { kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNumber;
  bool boolean = false;
  std::uint64_t number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue& at(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return v;
    }
    throw std::runtime_error("checkpoint: missing key '" + key + "'");
  }

  /// Lookup for keys added after version 1 shipped: nullptr when absent,
  /// so pre-existing checkpoint files still parse (and are then accepted
  /// or rejected by the fingerprint gate, not a parse error).
  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("checkpoint: JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        if (text_.compare(pos_, 4, "true") == 0) {
          v.boolean = true;
          pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
          v.boolean = false;
          pos_ += 5;
        } else {
          fail("bad literal");
        }
        return v;
      }
      default: {
        JsonValue v;
        v.type = JsonValue::Type::kNumber;
        if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad value");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          v.number = v.number * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
          ++pos_;
        }
        return v;
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: fail("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double read_double(const JsonValue& v) {
  if (v.type != JsonValue::Type::kString) {
    throw std::runtime_error("checkpoint: double must be a hex-bits string");
  }
  return bits_from_hex(v.str);
}

std::vector<double> read_double_array(const JsonValue& v) {
  std::vector<double> out;
  out.reserve(v.array.size());
  for (const JsonValue& e : v.array) out.push_back(read_double(e));
  return out;
}

std::vector<std::uint64_t> read_u64_array(const JsonValue& v) {
  std::vector<std::uint64_t> out;
  out.reserve(v.array.size());
  for (const JsonValue& e : v.array) {
    if (e.type != JsonValue::Type::kNumber) {
      throw std::runtime_error("checkpoint: expected unsigned integer");
    }
    out.push_back(e.number);
  }
  return out;
}

constexpr std::uint64_t kVersion = 1;

}  // namespace

std::string checkpoint_to_json(const TrajectoryCheckpoint& s) {
  std::ostringstream os;
  os << "{\"version\":" << kVersion << ",";
  os << "\"fingerprint\":";
  write_escaped(os, s.fingerprint);
  os << ",\"passes\":" << s.passes << ",\"trained\":" << s.trained << ',';
  write_u64_array(os, "learned", s.learned);
  os << ',';
  write_u64_array(os, "active", s.active);
  os << ',';
  write_double_array(os, "c_learned", s.c_learned);
  os << ',';
  write_double_array(os, "m_learned", s.m_learned);
  os << ',';
  write_double_array(os, "theta_cost", s.theta_cost);
  os << ',';
  write_double_array(os, "theta_mem", s.theta_mem);
  os << ",\"backend_state_cost\":";
  write_escaped(os, s.backend_state_cost);
  os << ",\"backend_state_mem\":";
  write_escaped(os, s.backend_state_mem);
  os << ",\"rng\":{";
  write_u64_array(os, "words", s.rng.words);
  os << ",\"cached_normal\":\"" << hex_bits(s.rng.cached_normal) << '"'
     << ",\"has_cached_normal\":"
     << (s.rng.has_cached_normal ? "true" : "false") << '}';
  os << ",\"cc\":\"" << hex_bits(s.cc) << '"';
  os << ",\"cr\":\"" << hex_bits(s.cr) << '"';
  os << ",\"last_rmse_cost\":\"" << hex_bits(s.last_rmse_cost) << '"';
  os << ",\"last_rmse_mem\":\"" << hex_bits(s.last_rmse_mem) << '"';
  os << ",\"last_rmse_weighted\":\"" << hex_bits(s.last_rmse_weighted) << '"';
  os << ",\"last_record_evaluated\":"
     << (s.last_record_evaluated ? "true" : "false");
  os << ",\"initial_rmse_cost\":\"" << hex_bits(s.initial_rmse_cost) << '"';
  os << ",\"initial_rmse_mem\":\"" << hex_bits(s.initial_rmse_mem) << '"';
  os << ",\"stable_streak\":" << s.stable_streak << ',';
  write_double_array(os, "previous_cost_mu_log", s.previous_cost_mu_log);
  os << ",\"censored_count\":" << s.censored_count;
  os << ",\"censored_cost\":\"" << hex_bits(s.censored_cost) << "\",";
  write_u64_array(os, "fault_hits", s.fault_hits);
  os << ',';
  write_u64_array(os, "fault_fires", s.fault_fires);
  os << ",\"iterations\":[";
  for (std::size_t i = 0; i < s.iterations.size(); ++i) {
    const IterationRecord& r = s.iterations[i];
    os << (i == 0 ? "" : ",") << "{\"iteration\":" << r.iteration
       << ",\"dataset_row\":" << r.dataset_row
       << ",\"actual_cost\":\"" << hex_bits(r.actual_cost) << '"'
       << ",\"actual_memory\":\"" << hex_bits(r.actual_memory) << '"'
       << ",\"predicted_cost_log10\":\"" << hex_bits(r.predicted_cost_log10)
       << '"' << ",\"predicted_cost_sigma\":\""
       << hex_bits(r.predicted_cost_sigma) << '"'
       << ",\"predicted_mem_log10\":\"" << hex_bits(r.predicted_mem_log10)
       << '"' << ",\"predicted_mem_sigma\":\""
       << hex_bits(r.predicted_mem_sigma) << '"'
       << ",\"rmse_cost\":\"" << hex_bits(r.rmse_cost) << '"'
       << ",\"rmse_mem\":\"" << hex_bits(r.rmse_mem) << '"'
       << ",\"rmse_cost_weighted\":\"" << hex_bits(r.rmse_cost_weighted) << '"'
       << ",\"cumulative_cost\":\"" << hex_bits(r.cumulative_cost) << '"'
       << ",\"cumulative_regret\":\"" << hex_bits(r.cumulative_regret) << '"'
       << ",\"candidates_before\":" << r.candidates_before
       << ",\"censor\":" << static_cast<std::uint64_t>(r.censor) << '}';
  }
  os << "]}";
  return os.str();
}

TrajectoryCheckpoint checkpoint_from_json(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  if (root.at("version").number != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(root.at("version").number));
  }
  TrajectoryCheckpoint s;
  s.fingerprint = root.at("fingerprint").str;
  s.passes = root.at("passes").number;
  s.trained = root.at("trained").number;
  s.learned = read_u64_array(root.at("learned"));
  s.active = read_u64_array(root.at("active"));
  s.c_learned = read_double_array(root.at("c_learned"));
  s.m_learned = read_double_array(root.at("m_learned"));
  s.theta_cost = read_double_array(root.at("theta_cost"));
  s.theta_mem = read_double_array(root.at("theta_mem"));
  if (const JsonValue* v = root.find("backend_state_cost")) {
    s.backend_state_cost = v->str;
  }
  if (const JsonValue* v = root.find("backend_state_mem")) {
    s.backend_state_mem = v->str;
  }
  {
    const JsonValue& rng = root.at("rng");
    const std::vector<std::uint64_t> words = read_u64_array(rng.at("words"));
    if (words.size() != s.rng.words.size()) {
      throw std::runtime_error("checkpoint: rng state must have 4 words");
    }
    std::copy(words.begin(), words.end(), s.rng.words.begin());
    s.rng.cached_normal = read_double(rng.at("cached_normal"));
    s.rng.has_cached_normal = rng.at("has_cached_normal").boolean;
  }
  s.cc = read_double(root.at("cc"));
  s.cr = read_double(root.at("cr"));
  s.last_rmse_cost = read_double(root.at("last_rmse_cost"));
  s.last_rmse_mem = read_double(root.at("last_rmse_mem"));
  s.last_rmse_weighted = read_double(root.at("last_rmse_weighted"));
  s.last_record_evaluated = root.at("last_record_evaluated").boolean;
  s.initial_rmse_cost = read_double(root.at("initial_rmse_cost"));
  s.initial_rmse_mem = read_double(root.at("initial_rmse_mem"));
  s.stable_streak = root.at("stable_streak").number;
  s.previous_cost_mu_log = read_double_array(root.at("previous_cost_mu_log"));
  s.censored_count = root.at("censored_count").number;
  s.censored_cost = read_double(root.at("censored_cost"));
  const std::vector<std::uint64_t> hits = read_u64_array(root.at("fault_hits"));
  const std::vector<std::uint64_t> fires =
      read_u64_array(root.at("fault_fires"));
  if (hits.size() != faults::kSiteCount || fires.size() != faults::kSiteCount) {
    throw std::runtime_error("checkpoint: fault counter arity mismatch");
  }
  std::copy(hits.begin(), hits.end(), s.fault_hits.begin());
  std::copy(fires.begin(), fires.end(), s.fault_fires.begin());
  for (const JsonValue& rec : root.at("iterations").array) {
    IterationRecord r;
    r.iteration = rec.at("iteration").number;
    r.dataset_row = rec.at("dataset_row").number;
    r.actual_cost = read_double(rec.at("actual_cost"));
    r.actual_memory = read_double(rec.at("actual_memory"));
    r.predicted_cost_log10 = read_double(rec.at("predicted_cost_log10"));
    r.predicted_cost_sigma = read_double(rec.at("predicted_cost_sigma"));
    r.predicted_mem_log10 = read_double(rec.at("predicted_mem_log10"));
    r.predicted_mem_sigma = read_double(rec.at("predicted_mem_sigma"));
    r.rmse_cost = read_double(rec.at("rmse_cost"));
    r.rmse_mem = read_double(rec.at("rmse_mem"));
    r.rmse_cost_weighted = read_double(rec.at("rmse_cost_weighted"));
    r.cumulative_cost = read_double(rec.at("cumulative_cost"));
    r.cumulative_regret = read_double(rec.at("cumulative_regret"));
    r.candidates_before = rec.at("candidates_before").number;
    const std::uint64_t censor = rec.at("censor").number;
    if (censor > static_cast<std::uint64_t>(CensorKind::kNanRow)) {
      throw std::runtime_error("checkpoint: bad censor kind");
    }
    r.censor = static_cast<CensorKind>(censor);
    s.iterations.push_back(std::move(r));
  }
  return s;
}

void save_checkpoint(const TrajectoryCheckpoint& state,
                     const std::filesystem::path& path) {
  const std::filesystem::path tmp =
      std::filesystem::path(path).concat(".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      throw std::runtime_error("save_checkpoint: cannot open " + tmp.string());
    }
    out << checkpoint_to_json(state);
    out.flush();
    if (!out.good()) {
      throw std::runtime_error("save_checkpoint: write failed for " +
                               tmp.string());
    }
  }
  // Atomic publish: a concurrent reader sees either the old complete file
  // or the new complete file, never a partial write.
  std::filesystem::rename(tmp, path);
}

std::optional<TrajectoryCheckpoint> load_checkpoint(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return checkpoint_from_json(buffer.str());
}

}  // namespace alamr::core
