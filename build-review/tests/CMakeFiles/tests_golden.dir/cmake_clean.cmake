file(REMOVE_RECURSE
  "CMakeFiles/tests_golden.dir/test_golden_trajectory.cpp.o"
  "CMakeFiles/tests_golden.dir/test_golden_trajectory.cpp.o.d"
  "tests_golden"
  "tests_golden.pdb"
  "tests_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
