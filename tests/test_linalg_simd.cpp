// Tests for the explicitly vectorized kernels in <alamr/linalg/simd.hpp>.
//
// The header is freestanding, so these tests run in every build mode —
// they validate the kernels themselves, independently of whether
// matrix.hpp dispatches to them (ALAMR_SIMD). Each kernel is compared
// against a local strictly-sequential scalar reference: exact equality
// is NOT required (the SIMD kernels reassociate reductions and fuse
// multiply-adds by design), but agreement must be at working precision.

#include "alamr/linalg/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "alamr/stats/rng.hpp"

namespace {

namespace simd = alamr::linalg::simd;
using alamr::stats::Rng;

double ref_dot(const double* x, const double* y, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double ref_sqdist(const double* x, const double* y, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& e : v) e = rng.uniform(-3.0, 3.0);
  return v;
}

// Edge sizes around the 4-wide unroll: empty, sub-width, exact multiples,
// and every tail length.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 257};

TEST(SimdKernels, DotMatchesScalarReference) {
  Rng rng(31);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    const auto y = random_vec(n, rng);
    const double expect = ref_dot(x.data(), y.data(), n);
    const double got = simd::dot(x.data(), y.data(), n);
    const double scale = std::max(1.0, std::abs(expect));
    EXPECT_NEAR(got, expect, 1e-12 * scale) << "n=" << n;
  }
}

TEST(SimdKernels, SquaredDistanceMatchesScalarReference) {
  Rng rng(32);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    const auto y = random_vec(n, rng);
    const double expect = ref_sqdist(x.data(), y.data(), n);
    const double got = simd::squared_distance(x.data(), y.data(), n);
    EXPECT_NEAR(got, expect, 1e-12 * std::max(1.0, expect)) << "n=" << n;
    EXPECT_GE(got, 0.0);
  }
}

TEST(SimdKernels, SquaredDistanceOfIdenticalVectorsIsExactlyZero) {
  Rng rng(33);
  const auto x = random_vec(37, rng);
  EXPECT_EQ(simd::squared_distance(x.data(), x.data(), x.size()), 0.0);
}

TEST(SimdKernels, AxpyMatchesScalarReference) {
  Rng rng(34);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    const auto y0 = random_vec(n, rng);
    const double alpha = rng.uniform(-2.0, 2.0);

    std::vector<double> expect = y0;
    for (std::size_t i = 0; i < n; ++i) expect[i] += alpha * x[i];

    std::vector<double> got = y0;
    simd::axpy(alpha, x.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i], expect[i], 1e-13 * std::max(1.0, std::abs(expect[i])))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernels, Rank1SubMatchesScalarReference) {
  Rng rng(35);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    const auto y0 = random_vec(n, rng);
    const double alpha = rng.uniform(-2.0, 2.0);

    std::vector<double> expect = y0;
    for (std::size_t i = 0; i < n; ++i) expect[i] -= alpha * x[i];

    std::vector<double> got = y0;
    simd::rank1_sub(alpha, x.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i], expect[i], 1e-13 * std::max(1.0, std::abs(expect[i])))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernels, AxpyWithZeroAlphaIsIdentity) {
  Rng rng(36);
  const auto x = random_vec(19, rng);
  const auto y0 = random_vec(19, rng);
  std::vector<double> got = y0;
  simd::axpy(0.0, x.data(), got.data(), got.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], y0[i]);
}

TEST(SimdKernels, FmaddBasicIdentity) {
  // Whether fused or not, exact-representable inputs give exact results.
  EXPECT_EQ(simd::fmadd(2.0, 3.0, 4.0), 10.0);
  EXPECT_EQ(simd::fmadd(-1.0, 5.0, 5.0), 0.0);
}

}  // namespace
