// Failure-injection and pathological-input tests: the library must stay
// numerically sane (no NaNs, no crashes, meaningful exceptions) when fed
// degenerate data — constant responses, extreme outliers, duplicated
// configurations, near-empty partitions — and, with an armed fault plan,
// must censor/recover/checkpoint deterministically (DESIGN.md §9).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "alamr/core/batch.hpp"
#include "alamr/core/export.hpp"
#include "alamr/core/faults.hpp"
#include "alamr/core/simulator.hpp"
#include "alamr/data/partition.hpp"
#include "alamr/gp/gpr.hpp"
#include "synthetic_dataset.hpp"

namespace {

using namespace alamr;
namespace faults = alamr::core::faults;

/// Small, fast AL configuration shared by the failure-model tests.
core::AlOptions small_al_options(std::size_t max_iterations) {
  core::AlOptions options;
  options.n_test = 30;
  options.n_init = 12;
  options.max_iterations = max_iterations;
  options.initial_fit.restarts = 0;
  options.initial_fit.max_opt_iterations = 10;
  options.refit.max_opt_iterations = 3;
  return options;
}

data::Partition small_partition(const data::Dataset& dataset,
                                const core::AlOptions& options,
                                std::uint64_t seed) {
  stats::Rng rng(seed);
  return data::make_partition(dataset.size(), options.n_test, options.n_init,
                              rng);
}

TEST(Robustness, GprWithConstantTargets) {
  // Zero-variance targets: the fit must not blow up, predictions equal
  // the constant, and stddev stays finite.
  stats::Rng rng(1);
  linalg::Matrix x(12, 2);
  for (std::size_t i = 0; i < 12; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);
    x(i, 1) = rng.uniform(0.0, 1.0);
  }
  const std::vector<double> y(12, 3.25);
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), {});
  gpr.fit(x, y, rng);
  const gp::Prediction pred = gpr.predict(x);
  for (std::size_t i = 0; i < pred.mean.size(); ++i) {
    EXPECT_NEAR(pred.mean[i], 3.25, 1e-3);
    EXPECT_TRUE(std::isfinite(pred.stddev[i]));
  }
}

TEST(Robustness, GprWithExtremeOutlier) {
  stats::Rng rng(2);
  linalg::Matrix x(15, 1);
  std::vector<double> y(15);
  for (std::size_t i = 0; i < 15; ++i) {
    x(i, 0) = static_cast<double>(i) / 14.0;
    y[i] = std::sin(4.0 * x(i, 0));
  }
  y[7] = 1e4;  // catastrophic measurement
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), {});
  EXPECT_NO_THROW(gpr.fit(x, y, rng));
  const auto mean = gpr.predict_mean(x);
  for (const double m : mean) EXPECT_TRUE(std::isfinite(m));
}

TEST(Robustness, GprWithManyDuplicatedRows) {
  // Replicate-heavy design matrices make K singular without jitter.
  stats::Rng rng(3);
  linalg::Matrix x(20, 2);
  std::vector<double> y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    // Only 4 distinct locations, 5 copies each, noisy targets.
    x(i, 0) = static_cast<double>(i % 4) / 3.0;
    x(i, 1) = 0.5;
    y[i] = std::cos(x(i, 0)) + rng.normal(0.0, 0.01);
  }
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), {});
  EXPECT_NO_THROW(gpr.fit(x, y, rng));
  const gp::Prediction pred = gpr.predict(x);
  for (const double s : pred.stddev) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0);
  }
}

TEST(Robustness, SimulatorWithNearConstantMemoryResponses) {
  // If memory barely varies, the default limit rule still produces a
  // usable threshold and RGMA does not crash.
  auto dataset = alamr::testing::synthetic_amr_dataset(80, 5);
  for (double& m : dataset.memory) m = 1.0 + 1e-9 * m;
  core::AlOptions options;
  options.n_test = 30;
  options.n_init = 10;
  options.max_iterations = 5;
  options.initial_fit.restarts = 0;
  options.refit.max_opt_iterations = 3;
  const core::AlSimulator sim(dataset, options);
  stats::Rng rng(6);
  const core::Rgma rgma(sim.memory_limit_log10());
  EXPECT_NO_THROW(sim.run(rgma, rng));
}

TEST(Robustness, SimulatorWithTinyActiveSet) {
  // n_active == 1: a single AL step, then exhaustion.
  auto dataset = alamr::testing::synthetic_amr_dataset(42, 7);
  core::AlOptions options;
  options.n_test = 31;
  options.n_init = 10;
  options.max_iterations = 0;
  options.initial_fit.restarts = 0;
  options.refit.max_opt_iterations = 3;
  const core::AlSimulator sim(dataset, options);
  stats::Rng rng(8);
  const auto traj = sim.run(core::RandGoodness(), rng);
  EXPECT_EQ(traj.iterations.size(), 1u);
  EXPECT_EQ(traj.stop_reason, core::StopReason::kActiveExhausted);
}

TEST(Robustness, StrategiesHandleZeroSigmaEverywhere) {
  // Degenerate predictions (all sigma = 0) must not divide by zero.
  linalg::Matrix x(3, 2, 0.5);
  const std::vector<double> mu{0.2, 0.1, 0.3};
  const std::vector<double> zeros{0.0, 0.0, 0.0};
  const core::CandidateView view{x, mu, zeros, mu, zeros};
  stats::Rng rng(9);
  EXPECT_NO_THROW(core::RandGoodness().select(view, rng));
  EXPECT_NO_THROW(core::MaxSigma().select(view, rng));
  EXPECT_NO_THROW(core::ExpectedImprovement().select(view, rng));
  EXPECT_EQ(core::MinPred().select(view, rng), 1u);
}

// --- Fault injection determinism -----------------------------------------

TEST(Faults, SameSeedAndPlanGiveIdenticalTrajectories) {
  const auto dataset = alamr::testing::synthetic_amr_dataset(100, 13);
  core::AlOptions options = small_al_options(12);
  options.failures.plan = faults::FaultPlan::parse(
      "seed=19;acquire.oom:p=0.2;data.nan_row:p=0.1;acquire.timeout:hits=1");
  const core::AlSimulator sim(dataset, options);
  const data::Partition partition = small_partition(dataset, options, 21);

  stats::Rng rng_a(7);
  const auto a = sim.run_with_partition(core::RandGoodness(), partition, rng_a);
  stats::Rng rng_b(7);
  const auto b = sim.run_with_partition(core::RandGoodness(), partition, rng_b);

  EXPECT_EQ(core::trajectory_to_csv(a), core::trajectory_to_csv(b));
  // hits=1 guarantees at least the pass-1 timeout censoring fired.
  EXPECT_GE(a.censored_count, 1u);
  EXPECT_GT(a.censored_cost, 0.0);
  EXPECT_EQ(a.censored_count, b.censored_count);
  EXPECT_EQ(a.censored_cost, b.censored_cost);
}

TEST(Faults, ArmedButNeverFiringPlanIsByteIdenticalToNoPlan) {
  // An injector that is installed and consulted but never fires must have
  // ZERO effect on the trajectory bytes — the golden-preservation property
  // the disarmed fire() path promises, exercised through the armed path.
  // Under the check.sh faults leg the "no plan" baseline inherits the
  // environment plan and genuinely censors, so the comparison is void.
  if (std::getenv("ALAMR_FAULT_PLAN") != nullptr) GTEST_SKIP();
  const auto dataset = alamr::testing::synthetic_amr_dataset(100, 17);
  core::AlOptions plain = small_al_options(10);
  core::AlOptions armed = plain;
  armed.failures.plan = faults::FaultPlan::parse("acquire.oom:hits=999999");
  const core::AlSimulator sim_plain(dataset, plain);
  const core::AlSimulator sim_armed(dataset, armed);
  const data::Partition partition = small_partition(dataset, plain, 5);

  stats::Rng rng_a(3);
  const auto a =
      sim_plain.run_with_partition(core::RandGoodness(), partition, rng_a);
  stats::Rng rng_b(3);
  const auto b =
      sim_armed.run_with_partition(core::RandGoodness(), partition, rng_b);
  EXPECT_EQ(core::trajectory_to_csv(a), core::trajectory_to_csv(b));
  EXPECT_EQ(b.censored_count, 0u);
}

// --- Censored-acquisition accounting ---------------------------------------

TEST(Faults, CensoredAcquisitionBurnsCostIntoCcAndCr) {
  const auto dataset = alamr::testing::synthetic_amr_dataset(100, 23);
  core::AlOptions options = small_al_options(4);
  options.failures.plan = faults::FaultPlan::parse("acquire.oom:hits=0");
  options.failures.policy = core::CensorPolicy::kDropCensored;
  const core::AlSimulator sim(dataset, options);
  const data::Partition partition = small_partition(dataset, options, 9);

  stats::Rng rng(11);
  const auto traj = sim.run_with_partition(core::RandGoodness(), partition, rng);
  ASSERT_EQ(traj.iterations.size(), 4u);  // censored pass consumed budget

  const auto& rec0 = traj.iterations[0];
  EXPECT_EQ(rec0.censor, core::CensorKind::kOom);
  // Full waste: the whole actual cost lands in CC and, because nothing
  // usable came back, in CR too.
  EXPECT_EQ(rec0.cumulative_cost, rec0.actual_cost);
  EXPECT_EQ(rec0.cumulative_regret, rec0.actual_cost);
  // Models unchanged => RMSE columns carry the post-init values.
  EXPECT_EQ(rec0.rmse_cost, traj.initial_rmse_cost);
  EXPECT_EQ(rec0.rmse_mem, traj.initial_rmse_mem);

  EXPECT_EQ(traj.censored_count, 1u);
  EXPECT_EQ(traj.censored_cost, rec0.actual_cost);
  EXPECT_EQ(traj.iterations[1].censor, core::CensorKind::kNone);

  // The censored CSV gains the censor columns; clean rows mark 0/none.
  const std::string csv = core::trajectory_to_csv(traj);
  EXPECT_NE(csv.find(",censored,censor_kind"), std::string::npos);
  EXPECT_NE(csv.find(",1,oom"), std::string::npos);
  EXPECT_NE(csv.find(",0,none"), std::string::npos);
}

TEST(Faults, RetryPolicyConsumesBudgetOnlyOnSuccess) {
  const auto dataset = alamr::testing::synthetic_amr_dataset(100, 23);
  core::AlOptions options = small_al_options(4);
  options.failures.plan = faults::FaultPlan::parse("acquire.oom:hits=0");
  options.failures.policy = core::CensorPolicy::kRetryNextCandidate;
  const core::AlSimulator sim(dataset, options);
  const data::Partition partition = small_partition(dataset, options, 9);

  stats::Rng rng(11);
  const auto traj = sim.run_with_partition(core::RandGoodness(), partition, rng);
  // 1 censored pass (recorded, not budgeted) + 4 successful acquisitions.
  ASSERT_EQ(traj.iterations.size(), 5u);
  std::size_t censored = 0;
  for (const auto& rec : traj.iterations) {
    censored += rec.censor != core::CensorKind::kNone ? 1 : 0;
  }
  EXPECT_EQ(censored, 1u);
  EXPECT_EQ(traj.censored_count, 1u);
}

TEST(Faults, PenalizedLabelTrainsOnCensoredPoint) {
  const auto dataset = alamr::testing::synthetic_amr_dataset(100, 29);
  core::AlOptions drop = small_al_options(6);
  drop.failures.plan = faults::FaultPlan::parse("acquire.oom:hits=2");
  drop.failures.policy = core::CensorPolicy::kDropCensored;
  core::AlOptions penalized = drop;
  penalized.failures.policy = core::CensorPolicy::kPenalizedLabel;

  const data::Partition partition = small_partition(dataset, drop, 31);
  const core::AlSimulator sim_drop(dataset, drop);
  const core::AlSimulator sim_pen(dataset, penalized);

  stats::Rng rng_a(13);
  const auto t_drop =
      sim_drop.run_with_partition(core::RandGoodness(), partition, rng_a);
  stats::Rng rng_b(13);
  const auto t_pen =
      sim_pen.run_with_partition(core::RandGoodness(), partition, rng_b);

  ASSERT_GE(t_drop.iterations.size(), 3u);
  ASSERT_GE(t_pen.iterations.size(), 3u);
  EXPECT_EQ(t_drop.iterations[2].censor, core::CensorKind::kOom);
  EXPECT_EQ(t_pen.iterations[2].censor, core::CensorKind::kOom);
  // Drop: models untouched, RMSE carried over bitwise from pass 1.
  EXPECT_EQ(t_drop.iterations[2].rmse_cost, t_drop.iterations[1].rmse_cost);
  // Penalized: the failure became a label, the models moved, and the
  // freshly evaluated RMSE reflects it.
  EXPECT_NE(t_pen.iterations[2].rmse_cost, t_pen.iterations[1].rmse_cost);
  // Both policies burn the cost identically (same partition, same rng up
  // to the censored pass => same picks so far).
  EXPECT_EQ(t_pen.iterations[2].cumulative_cost,
            t_drop.iterations[2].cumulative_cost);
}

TEST(Faults, FailureAwareCensorsRealOverLimitAcquisitions) {
  // With failure awareness on and a memory-blind strategy, acquisitions
  // whose TRUE memory exceeds L_mem crash: no label, full cost wasted.
  const auto dataset = alamr::testing::synthetic_amr_dataset(120, 37);
  core::AlOptions options = small_al_options(15);
  options.failures.failure_aware = true;
  options.failures.policy = core::CensorPolicy::kDropCensored;
  const core::AlSimulator sim(dataset, options);
  const data::Partition partition = small_partition(dataset, options, 41);

  stats::Rng rng(17);
  const auto traj = sim.run_with_partition(core::RandGoodness(), partition, rng);
  // L_mem is the median memory, so a memory-blind policy hits violators
  // with probability ~1/2 per pick; 15 picks make zero hits astronomically
  // unlikely (and the run is deterministic, so this cannot flake).
  EXPECT_GE(traj.censored_count, 1u);
  for (const auto& rec : traj.iterations) {
    if (rec.censor == core::CensorKind::kOverLimit) {
      EXPECT_GT(rec.actual_memory, traj.memory_limit_mb * 0.999);
    }
  }
}

// --- Recovery ladder --------------------------------------------------------

TEST(Faults, OptimizerDivergenceDegradesToNelderMead) {
  stats::Rng rng(19);
  linalg::Matrix x(14, 2);
  std::vector<double> y(14);
  for (std::size_t i = 0; i < 14; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);
    x(i, 1) = rng.uniform(0.0, 1.0);
    y[i] = std::sin(3.0 * x(i, 0)) + 0.5 * x(i, 1);
  }
  gp::GprOptions opts;
  opts.restarts = 0;
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), opts);

  core::trace::set_enabled(true);
  core::trace::TraceCollector collector;
  {
    const core::trace::ScopedCollector trace_scope(collector);
    // hits=0 poisons the single L-BFGS start; the Nelder-Mead rung's own
    // consult (hit 1) stays clean, so the ladder stops there.
    faults::FaultInjector injector(
        faults::FaultPlan::parse("opt.diverge:hits=0"));
    const faults::ScopedFaultInjector fault_scope(injector);
    gpr.fit(x, y, rng);
  }
  const auto report = collector.report();
  core::trace::set_enabled(false);
  EXPECT_GE(report.counter("gpr.opt_degrade_nm"), 1u);
  EXPECT_EQ(report.counter("gpr.opt_keep_previous"), 0u);
  ASSERT_TRUE(gpr.fitted());
  for (const double m : gpr.predict_mean(x)) EXPECT_TRUE(std::isfinite(m));
}

TEST(Faults, TotalOptimizerFailureKeepsPreviousHyperparameters) {
  stats::Rng rng(23);
  linalg::Matrix x(12, 1);
  std::vector<double> y(12);
  for (std::size_t i = 0; i < 12; ++i) {
    x(i, 0) = static_cast<double>(i) / 11.0;
    y[i] = std::cos(5.0 * x(i, 0));
  }
  gp::GprOptions opts;
  opts.restarts = 0;
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), opts);

  core::trace::set_enabled(true);
  core::trace::TraceCollector collector;
  {
    const core::trace::ScopedCollector trace_scope(collector);
    // p=1 vetoes the L-BFGS start AND the Nelder-Mead rung: the ladder
    // bottoms out at keep-previous-theta, and the posterior is still built
    // (at the kernel's current parameters) instead of throwing.
    faults::FaultInjector injector(faults::FaultPlan::parse("opt.diverge:p=1"));
    const faults::ScopedFaultInjector fault_scope(injector);
    gpr.fit(x, y, rng);
  }
  const auto report = collector.report();
  core::trace::set_enabled(false);
  EXPECT_GE(report.counter("gpr.opt_keep_previous"), 1u);
  ASSERT_TRUE(gpr.fitted());
  for (const double m : gpr.predict_mean(x)) EXPECT_TRUE(std::isfinite(m));
}

TEST(Faults, TrajectorySurvivesPersistentOptimizerDivergence) {
  // End-to-end: every refit's optimizer diverges for the whole trajectory;
  // the run must complete (hyperparameters frozen) rather than abort.
  const auto dataset = alamr::testing::synthetic_amr_dataset(90, 43);
  core::AlOptions options = small_al_options(6);
  options.trace = true;
  options.failures.plan = faults::FaultPlan::parse("opt.diverge:p=1");
  const core::AlSimulator sim(dataset, options);
  const data::Partition partition = small_partition(dataset, options, 3);
  stats::Rng rng(29);
  const auto traj = sim.run_with_partition(core::RandGoodness(), partition, rng);
  EXPECT_EQ(traj.iterations.size(), 6u);
  EXPECT_GE(traj.trace.counter("gpr.opt_keep_previous") +
                traj.trace.counter("gpr.opt_degrade_nm"),
            1u);
  for (const auto& rec : traj.iterations) {
    EXPECT_TRUE(std::isfinite(rec.rmse_cost));
  }
  core::trace::set_enabled(false);
}

// --- Checkpoint / kill / resume --------------------------------------------

std::filesystem::path temp_checkpoint(const char* name) {
  return std::filesystem::path(::testing::TempDir()) / name;
}

TEST(Checkpoint, ResumedRunIsByteIdenticalToUninterrupted) {
  const auto dataset = alamr::testing::synthetic_amr_dataset(110, 47);
  const core::AlOptions options = small_al_options(14);
  const core::AlSimulator sim(dataset, options);
  const data::Partition partition = small_partition(dataset, options, 53);

  stats::Rng rng_full(31);
  const auto full =
      sim.run_with_partition(core::RandGoodness(), partition, rng_full);

  const std::filesystem::path path = temp_checkpoint("resume_plain.json");
  std::filesystem::remove(path);
  core::CheckpointConfig cfg;
  cfg.path = path;
  cfg.stride = 3;
  cfg.halt_after_iterations = 7;  // "kill" mid-trajectory
  stats::Rng rng_first(31);
  const auto first =
      sim.run_resumable(core::RandGoodness(), partition, rng_first, cfg);
  EXPECT_EQ(first.stop_reason, core::StopReason::kCheckpointHalt);
  EXPECT_EQ(first.iterations.size(), 7u);
  ASSERT_TRUE(std::filesystem::exists(path));

  cfg.resume = true;
  cfg.halt_after_iterations = 0;
  stats::Rng rng_second(31);
  const auto resumed =
      sim.run_resumable(core::RandGoodness(), partition, rng_second, cfg);
  EXPECT_EQ(core::trajectory_to_csv(resumed), core::trajectory_to_csv(full));
  EXPECT_EQ(resumed.stop_reason, full.stop_reason);
  // A completed trajectory retires its checkpoint file.
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(Checkpoint, ResumeUnderFaultPlanRestoresInjectorCounters) {
  // The continuation must consult the fault schedule at the same hit
  // numbers the uninterrupted run would — censoring patterns included.
  const auto dataset = alamr::testing::synthetic_amr_dataset(110, 59);
  core::AlOptions options = small_al_options(14);
  options.failures.plan = faults::FaultPlan::parse(
      "seed=5;acquire.oom:p=0.15;data.nan_row:hits=3");
  options.failures.policy = core::CensorPolicy::kPenalizedLabel;
  const core::AlSimulator sim(dataset, options);
  const data::Partition partition = small_partition(dataset, options, 61);

  stats::Rng rng_full(37);
  const auto full =
      sim.run_with_partition(core::RandGoodness(), partition, rng_full);
  EXPECT_GE(full.censored_count, 1u);  // hits=3 guarantees one censoring

  const std::filesystem::path path = temp_checkpoint("resume_faulted.json");
  std::filesystem::remove(path);
  core::CheckpointConfig cfg;
  cfg.path = path;
  cfg.stride = 2;
  cfg.halt_after_iterations = 5;
  stats::Rng rng_first(37);
  (void)sim.run_resumable(core::RandGoodness(), partition, rng_first, cfg);
  ASSERT_TRUE(std::filesystem::exists(path));

  cfg.resume = true;
  cfg.halt_after_iterations = 0;
  stats::Rng rng_second(37);
  const auto resumed =
      sim.run_resumable(core::RandGoodness(), partition, rng_second, cfg);
  EXPECT_EQ(core::trajectory_to_csv(resumed), core::trajectory_to_csv(full));
  EXPECT_EQ(resumed.censored_count, full.censored_count);
  EXPECT_EQ(resumed.censored_cost, full.censored_cost);
}

TEST(Checkpoint, DoubleHaltThenResumeStillMatches) {
  // Two kills at different points before completing — state must thread
  // through multiple checkpoint generations unchanged.
  const auto dataset = alamr::testing::synthetic_amr_dataset(110, 67);
  const core::AlOptions options = small_al_options(12);
  const core::AlSimulator sim(dataset, options);
  const data::Partition partition = small_partition(dataset, options, 71);

  stats::Rng rng_full(41);
  const auto full =
      sim.run_with_partition(core::RandGoodness(), partition, rng_full);

  const std::filesystem::path path = temp_checkpoint("resume_double.json");
  std::filesystem::remove(path);
  core::CheckpointConfig cfg;
  cfg.path = path;
  cfg.stride = 4;
  cfg.halt_after_iterations = 4;
  stats::Rng rng_a(41);
  (void)sim.run_resumable(core::RandGoodness(), partition, rng_a, cfg);
  cfg.resume = true;
  cfg.halt_after_iterations = 3;
  stats::Rng rng_b(41);
  const auto mid =
      sim.run_resumable(core::RandGoodness(), partition, rng_b, cfg);
  EXPECT_EQ(mid.stop_reason, core::StopReason::kCheckpointHalt);
  EXPECT_EQ(mid.iterations.size(), 7u);
  cfg.halt_after_iterations = 0;
  stats::Rng rng_c(41);
  const auto resumed =
      sim.run_resumable(core::RandGoodness(), partition, rng_c, cfg);
  EXPECT_EQ(core::trajectory_to_csv(resumed), core::trajectory_to_csv(full));
}

TEST(Checkpoint, MissingFileWithResumeRunsFresh) {
  const auto dataset = alamr::testing::synthetic_amr_dataset(90, 73);
  const core::AlOptions options = small_al_options(5);
  const core::AlSimulator sim(dataset, options);
  const data::Partition partition = small_partition(dataset, options, 79);

  stats::Rng rng_full(43);
  const auto full =
      sim.run_with_partition(core::RandGoodness(), partition, rng_full);

  const std::filesystem::path path = temp_checkpoint("resume_missing.json");
  std::filesystem::remove(path);
  core::CheckpointConfig cfg;
  cfg.path = path;
  cfg.stride = 2;
  cfg.resume = true;  // nothing to resume: must start fresh, not throw
  stats::Rng rng(43);
  const auto traj =
      sim.run_resumable(core::RandGoodness(), partition, rng, cfg);
  EXPECT_EQ(core::trajectory_to_csv(traj), core::trajectory_to_csv(full));
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(Checkpoint, IncompatibleFingerprintIsRejected) {
  const auto dataset = alamr::testing::synthetic_amr_dataset(90, 83);
  const core::AlOptions options = small_al_options(8);
  const core::AlSimulator sim(dataset, options);
  const data::Partition partition = small_partition(dataset, options, 89);

  const std::filesystem::path path = temp_checkpoint("resume_mismatch.json");
  std::filesystem::remove(path);
  core::CheckpointConfig cfg;
  cfg.path = path;
  cfg.stride = 2;
  cfg.halt_after_iterations = 3;
  stats::Rng rng_a(47);
  (void)sim.run_resumable(core::RandGoodness(), partition, rng_a, cfg);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Same checkpoint, different configuration: refuse loudly.
  const core::AlOptions other_options = small_al_options(9);
  const core::AlSimulator other(dataset, other_options);
  cfg.resume = true;
  cfg.halt_after_iterations = 0;
  stats::Rng rng_b(47);
  EXPECT_THROW(
      other.run_resumable(core::RandGoodness(), partition, rng_b, cfg),
      std::runtime_error);
  std::filesystem::remove(path);
}

// --- Batch isolation --------------------------------------------------------

TEST(BatchIsolation, MatchesPlainBatchSlotForSlot) {
  const auto dataset = alamr::testing::synthetic_amr_dataset(110, 97);
  const core::AlOptions options = small_al_options(6);
  const core::AlSimulator sim(dataset, options);
  core::BatchOptions batch;
  batch.trajectories = 3;
  batch.seed = 424242;
  batch.threads = 2;

  const auto plain = core::run_batch(sim, core::RandGoodness(), batch);
  const auto isolated =
      core::run_batch_isolated(sim, core::RandGoodness(), batch);
  ASSERT_EQ(isolated.size(), plain.size());
  for (std::size_t t = 0; t < plain.size(); ++t) {
    ASSERT_TRUE(isolated[t].ok) << isolated[t].error;
    EXPECT_EQ(core::trajectory_to_csv(isolated[t].result),
              core::trajectory_to_csv(plain[t]));
  }
}

TEST(BatchIsolation, PoisonedTrajectoriesFailAsSlotsNotAsBatch) {
  // An unrecoverable plan (every Cholesky attempt vetoed, forever) kills
  // every trajectory — the isolated batch must return failed slots with
  // the error text instead of propagating the exception. Resilience is
  // disarmed so the degradation ladder cannot ride the plan out (that
  // recovery path has its own tests in test_online_resilience.cpp).
  const auto dataset = alamr::testing::synthetic_amr_dataset(90, 101);
  core::AlOptions options = small_al_options(4);
  options.failures.plan = faults::FaultPlan::parse("cholesky.non_psd:p=1");
  options.resilience.enabled = false;
  const core::AlSimulator sim(dataset, options);
  core::BatchOptions batch;
  batch.trajectories = 3;
  batch.seed = 7;
  batch.threads = 2;

  const auto slots = core::run_batch_isolated(sim, core::RandGoodness(), batch);
  ASSERT_EQ(slots.size(), 3u);
  for (const auto& slot : slots) {
    EXPECT_FALSE(slot.ok);
    EXPECT_FALSE(slot.error.empty());
  }
}

TEST(BatchIsolation, CheckpointedBatchCompletesAndRetiresFiles) {
  const auto dataset = alamr::testing::synthetic_amr_dataset(100, 103);
  const core::AlOptions options = small_al_options(5);
  const core::AlSimulator sim(dataset, options);
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "batch_ckpt";
  std::filesystem::remove_all(dir);

  core::BatchOptions batch;
  batch.trajectories = 2;
  batch.seed = 31337;
  batch.threads = 2;
  batch.checkpoint_dir = dir;
  batch.checkpoint_stride = 2;

  const auto slots = core::run_batch_isolated(sim, core::RandGoodness(), batch);
  ASSERT_EQ(slots.size(), 2u);
  for (const auto& slot : slots) ASSERT_TRUE(slot.ok) << slot.error;
  // Completed trajectories deleted their checkpoint files.
  EXPECT_FALSE(std::filesystem::exists(dir / "trajectory_0.json"));
  EXPECT_FALSE(std::filesystem::exists(dir / "trajectory_1.json"));

  // And the checkpointed batch matches the plain one bit for bit.
  core::BatchOptions plain_batch = batch;
  plain_batch.checkpoint_dir.clear();
  const auto plain = core::run_batch(sim, core::RandGoodness(), plain_batch);
  for (std::size_t t = 0; t < slots.size(); ++t) {
    EXPECT_EQ(core::trajectory_to_csv(slots[t].result),
              core::trajectory_to_csv(plain[t]));
  }
}

TEST(Robustness, SimulatorSurvivesHugeDynamicRange) {
  // Costs spanning 12 orders of magnitude (far beyond the paper's 5.4e3).
  auto dataset = alamr::testing::synthetic_amr_dataset(60, 11);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    dataset.cost[i] = std::pow(10.0, -6.0 + 12.0 * (i % 10) / 9.0);
  }
  core::AlOptions options;
  options.n_test = 20;
  options.n_init = 10;
  options.max_iterations = 5;
  options.initial_fit.restarts = 0;
  options.refit.max_opt_iterations = 3;
  const core::AlSimulator sim(dataset, options);
  stats::Rng rng(12);
  const auto traj = sim.run(core::RandGoodness(), rng);
  for (const auto& rec : traj.iterations) {
    EXPECT_TRUE(std::isfinite(rec.rmse_cost));
    EXPECT_TRUE(std::isfinite(rec.cumulative_cost));
  }
}

}  // namespace
