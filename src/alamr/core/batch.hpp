#pragma once

// Batch execution and aggregation of AL trajectories (paper Sec. IV-B:
// "By processing a large number of trajectories, we can reason about the
// statistical properties of the algorithms independent of the initial
// conditions"). Mirrors the paper's multiprocessing batch mode with the
// shared ThreadPool (alamr/core/parallel.hpp); every trajectory gets an
// independent derived RNG stream so results do not depend on scheduling
// or thread count.

#include <cstdint>
#include <vector>

#include "alamr/core/simulator.hpp"

namespace alamr::core {

struct BatchOptions {
  std::size_t trajectories = 5;
  /// 0 = the ALAMR_THREADS env var, falling back to
  /// std::thread::hardware_concurrency() (see alamr/core/parallel.hpp).
  std::size_t threads = 0;
  std::uint64_t seed = 1234;
};

/// Runs `options.trajectories` independent trajectories of `strategy`
/// (fresh random partition each). Results are ordered by trajectory index
/// regardless of thread scheduling.
std::vector<TrajectoryResult> run_batch(const AlSimulator& simulator,
                                        const Strategy& strategy,
                                        const BatchOptions& options);

/// Per-iteration scalar extracted from a trajectory.
enum class Metric {
  kRmseCost,
  kRmseMem,
  kRmseCostWeighted,
  kCumulativeCost,
  kCumulativeRegret,
  kActualCost,
};

std::vector<double> extract_series(const TrajectoryResult& trajectory,
                                   Metric metric);

/// Cross-trajectory aggregate at one iteration.
struct CurvePoint {
  std::size_t iteration = 0;
  double mean = 0.0;
  double lo = 0.0;       // min across trajectories
  double hi = 0.0;       // max across trajectories
  std::size_t count = 0; // trajectories still running at this iteration
};

/// Mean/min/max of `metric` at each iteration across trajectories
/// (trajectories that stopped early simply drop out of later points).
std::vector<CurvePoint> aggregate_curve(
    std::span<const TrajectoryResult> trajectories, Metric metric);

}  // namespace alamr::core
