// Tests for the KDE/histogram machinery behind the Fig. 2 violin output.

#include "alamr/stats/kde.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::stats;

TEST(ScottBandwidth, PositiveAndShrinksWithN) {
  Rng rng(1);
  std::vector<double> small(50);
  std::vector<double> large(5000);
  for (double& v : small) v = rng.normal();
  for (double& v : large) v = rng.normal();
  const double h_small = scott_bandwidth(small);
  const double h_large = scott_bandwidth(large);
  EXPECT_GT(h_small, 0.0);
  EXPECT_GT(h_large, 0.0);
  EXPECT_LT(h_large, h_small);
}

TEST(ScottBandwidth, DegenerateSampleGetsFloor) {
  const std::vector<double> constant{2.0, 2.0, 2.0, 2.0};
  EXPECT_GT(scott_bandwidth(constant), 0.0);
}

TEST(GaussianKde, DensityIntegratesToOne) {
  Rng rng(3);
  std::vector<double> v(500);
  for (double& x : v) x = rng.normal(1.0, 2.0);
  const DensityCurve curve = gaussian_kde(v, 256);
  // Trapezoid integral over the grid (which extends 3h beyond the data).
  double integral = 0.0;
  for (std::size_t i = 1; i < curve.x.size(); ++i) {
    integral += 0.5 * (curve.density[i] + curve.density[i - 1]) *
                (curve.x[i] - curve.x[i - 1]);
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(GaussianKde, PeakNearTheMode) {
  Rng rng(4);
  std::vector<double> v(2000);
  for (double& x : v) x = rng.normal(5.0, 0.5);
  const DensityCurve curve = gaussian_kde(v, 128);
  const std::size_t argmax =
      static_cast<std::size_t>(std::distance(curve.density.begin(),
          std::max_element(curve.density.begin(), curve.density.end())));
  EXPECT_NEAR(curve.x[argmax], 5.0, 0.2);
}

TEST(GaussianKde, NonNegativeEverywhere) {
  const std::vector<double> v{0.0, 1.0, 10.0};
  const DensityCurve curve = gaussian_kde(v, 64);
  for (const double d : curve.density) EXPECT_GE(d, 0.0);
}

TEST(GaussianKde, RespectsExplicitBandwidth) {
  const std::vector<double> v{0.0, 1.0};
  const DensityCurve curve = gaussian_kde(v, 32, 0.7);
  EXPECT_DOUBLE_EQ(curve.bandwidth, 0.7);
}

TEST(GaussianKde, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW(gaussian_kde(empty), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW(gaussian_kde(v, 1), std::invalid_argument);
}

TEST(HistogramTest, CountsAndClamping) {
  const std::vector<double> v{-10.0, 0.1, 0.4, 0.6, 0.9, 15.0};
  const Histogram h = histogram(v, 2, 0.0, 1.0);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.counts[0], 3u);  // -10 clamped into first bin, plus 0.1, 0.4
  EXPECT_EQ(h.counts[1], 3u);  // 0.6, 0.9, 15 clamped
}

TEST(HistogramTest, BinCenters) {
  const Histogram h = histogram(std::vector<double>{}, 4, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(h.center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.center(3), 3.5);
}

TEST(HistogramTest, RejectsBadArguments) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(histogram(v, 0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(histogram(v, 4, 1.0, 1.0), std::invalid_argument);
}

}  // namespace
