// Tests for quadtree patch addressing and Morton encoding.

#include "alamr/amr/geometry.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace alamr::amr;

TEST(PatchKey, ParentChildRoundTrip) {
  const PatchKey key{3, 5, 2};
  for (int c = 0; c < 4; ++c) {
    const PatchKey child = key.child(c);
    EXPECT_EQ(child.level, 4);
    EXPECT_EQ(child.parent(), key);
    EXPECT_EQ(child.child_index(), c);
  }
}

TEST(PatchKey, ChildrenAreDistinct) {
  const PatchKey key{1, 0, 0};
  std::set<std::pair<int, int>> seen;
  for (int c = 0; c < 4; ++c) {
    const PatchKey child = key.child(c);
    seen.insert({child.i, child.j});
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(PatchKey, MortonChildOrder) {
  // Child order must be z-order: (0,0), (1,0), (0,1), (1,1).
  const PatchKey key{0, 0, 0};
  EXPECT_EQ(key.child(0), (PatchKey{1, 0, 0}));
  EXPECT_EQ(key.child(1), (PatchKey{1, 1, 0}));
  EXPECT_EQ(key.child(2), (PatchKey{1, 0, 1}));
  EXPECT_EQ(key.child(3), (PatchKey{1, 1, 1}));
}

TEST(PatchKey, FaceNeighbors) {
  const PatchKey key{2, 3, 3};
  EXPECT_EQ(key.face_neighbor(0), (PatchKey{2, 2, 3}));
  EXPECT_EQ(key.face_neighbor(1), (PatchKey{2, 4, 3}));
  EXPECT_EQ(key.face_neighbor(2), (PatchKey{2, 3, 2}));
  EXPECT_EQ(key.face_neighbor(3), (PatchKey{2, 3, 4}));
}

TEST(PatchKey, NeighborsAreInvolutions) {
  const PatchKey key{4, 7, 9};
  EXPECT_EQ(key.face_neighbor(0).face_neighbor(1), key);
  EXPECT_EQ(key.face_neighbor(2).face_neighbor(3), key);
}

TEST(Morton, KnownValues) {
  EXPECT_EQ(morton_encode(0, 0), 0u);
  EXPECT_EQ(morton_encode(1, 0), 1u);
  EXPECT_EQ(morton_encode(0, 1), 2u);
  EXPECT_EQ(morton_encode(1, 1), 3u);
  EXPECT_EQ(morton_encode(2, 0), 4u);
  EXPECT_EQ(morton_encode(0, 2), 8u);
}

TEST(Morton, InjectiveOnGrid) {
  std::set<std::uint64_t> codes;
  for (std::uint32_t x = 0; x < 32; ++x) {
    for (std::uint32_t y = 0; y < 32; ++y) {
      codes.insert(morton_encode(x, y));
    }
  }
  EXPECT_EQ(codes.size(), 32u * 32u);
}

TEST(Morton, LocalityWithinQuadrants) {
  // All codes of the lower-left 2x2 quadrant precede those of the
  // upper-right 2x2 quadrant.
  std::uint64_t max_ll = 0;
  std::uint64_t min_ur = ~0ULL;
  for (std::uint32_t x = 0; x < 2; ++x) {
    for (std::uint32_t y = 0; y < 2; ++y) {
      max_ll = std::max(max_ll, morton_encode(x, y));
      min_ur = std::min(min_ur, morton_encode(x + 2, y + 2));
    }
  }
  EXPECT_LT(max_ll, min_ur);
}

TEST(PatchKeyHash, DistinguishesLevels) {
  const PatchKeyHash hash;
  EXPECT_NE(hash(PatchKey{0, 1, 1}), hash(PatchKey{1, 1, 1}));
}

}  // namespace
