# Empty dependencies file for bench_fig4_regret.
# This may be replaced when dependencies are built.
