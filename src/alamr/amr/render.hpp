#pragma once

// Rasterization of mesh fields to PGM images — the quantitative stand-in
// for the paper's Fig. 1 flow visualizations. PGM (portable graymap) needs
// no image library and every viewer opens it.

#include <filesystem>
#include <string>

#include "alamr/amr/mesh.hpp"

namespace alamr::amr {

/// Which field to rasterize.
enum class RenderField {
  kDensity,          // rho, linear grayscale between field min/max
  kRefinementLevel,  // leaf level, coarse = dark
};

/// Renders the field on a width x height raster covering the domain
/// (row 0 = top of the domain) and returns it as an ASCII PGM (P2) string.
/// Throws std::invalid_argument for degenerate sizes.
std::string render_pgm(const QuadtreeMesh& mesh, RenderField field,
                       int width = 384, int height = 192);

/// render_pgm + write to disk. Throws std::runtime_error on I/O failure.
void write_pgm(const QuadtreeMesh& mesh, RenderField field,
               const std::filesystem::path& path, int width = 384,
               int height = 192);

}  // namespace alamr::amr
