# Empty compiler generated dependencies file for alamr_linalg.
# This may be replaced when dependencies are built.
