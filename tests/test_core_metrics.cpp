// Tests for the evaluation metrics (Eqs. 10-12), including randomized
// property tests (100+ seeded cases each) for the algebraic identities
// the definitions promise.

#include "alamr/core/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::core;

TEST(Rmse, KnownValue) {
  const std::vector<double> pred{1.0, 2.0, 3.0};
  const std::vector<double> actual{1.0, 4.0, 3.0};
  EXPECT_NEAR(rmse(pred, actual), std::sqrt(4.0 / 3.0), 1e-12);
}

TEST(Rmse, ZeroForPerfectPredictions) {
  const std::vector<double> v{0.5, 1.5, 2.5};
  EXPECT_DOUBLE_EQ(rmse(v, v), 0.0);
}

TEST(Rmse, RejectsBadInput) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(rmse(a, b), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW(rmse(empty, empty), std::invalid_argument);
}

TEST(WeightedRmse, UniformWeightsReproducePlainRmse) {
  const std::vector<double> pred{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> actual{2.0, 2.0, 5.0, 3.0};
  const std::vector<double> uniform{1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(weighted_rmse(pred, actual, uniform), rmse(pred, actual), 1e-12);
  // Scaling all weights equally changes nothing (normalization).
  const std::vector<double> scaled{7.0, 7.0, 7.0, 7.0};
  EXPECT_NEAR(weighted_rmse(pred, actual, scaled), rmse(pred, actual), 1e-12);
}

TEST(WeightedRmse, UpweightedResidualDominates) {
  const std::vector<double> pred{0.0, 0.0};
  const std::vector<double> actual{1.0, 10.0};
  const std::vector<double> favor_small{1.0, 0.0};
  const std::vector<double> favor_large{0.0, 1.0};
  // Weighting only the small residual gives a small error; weighting only
  // the large residual gives a large one (the paper's Sec. V-D argument
  // for prioritizing expensive-region accuracy).
  EXPECT_LT(weighted_rmse(pred, actual, favor_small),
            weighted_rmse(pred, actual, favor_large));
}

TEST(WeightedRmse, RejectsInvalidWeights) {
  const std::vector<double> v{1.0, 2.0};
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(weighted_rmse(v, v, negative), std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(weighted_rmse(v, v, zeros), std::invalid_argument);
  const std::vector<double> short_w{1.0};
  EXPECT_THROW(weighted_rmse(v, v, short_w), std::invalid_argument);
}

TEST(IndividualRegret, DefinitionOfEq11) {
  // Regret equals the full job cost iff memory >= limit.
  EXPECT_DOUBLE_EQ(individual_regret(3.5, 10.0, 7.5), 3.5);
  EXPECT_DOUBLE_EQ(individual_regret(3.5, 7.5, 7.5), 3.5);  // boundary: >=
  EXPECT_DOUBLE_EQ(individual_regret(3.5, 5.0, 7.5), 0.0);
}

TEST(Cumulative, RunningSums) {
  const std::vector<double> v{1.0, 0.0, 2.0, 3.0};
  const auto c = cumulative(v);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
  EXPECT_DOUBLE_EQ(c[3], 6.0);
}

TEST(Cumulative, EmptyInput) {
  EXPECT_TRUE(cumulative(std::vector<double>{}).empty());
}

TEST(Cumulative, MonotoneForNonNegativeSeries) {
  const std::vector<double> v{0.5, 0.0, 1.5, 0.25};
  const auto c = cumulative(v);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_GE(c[i], c[i - 1]);
}

// --- Randomized property tests -------------------------------------------
//
// Each property runs over 100+ independently seeded cases with random
// lengths and values, so the identities hold across the input space, not
// just on the hand-picked examples above.

std::vector<double> random_vector(alamr::stats::Rng& rng, std::size_t n,
                                  double lo, double hi) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

TEST(MetricsProperty, UniformWeightsEqualPlainRmse) {
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    alamr::stats::Rng rng(1000 + seed);
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0.0, 40.0));
    const auto pred = random_vector(rng, n, -50.0, 50.0);
    const auto actual = random_vector(rng, n, -50.0, 50.0);
    // Any constant weight vector normalizes back to all-ones, so the
    // weighted form must agree with the plain one up to roundoff.
    const double w = rng.uniform(0.1, 10.0);
    const std::vector<double> weights(n, w);
    EXPECT_NEAR(weighted_rmse(pred, actual, weights), rmse(pred, actual),
                1e-10 * (1.0 + rmse(pred, actual)))
        << "seed " << seed;
  }
}

TEST(MetricsProperty, CumulativeInvertsAdjacentDifference) {
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    alamr::stats::Rng rng(2000 + seed);
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0.0, 60.0));
    const auto values = random_vector(rng, n, -5.0, 5.0);
    const auto sums = cumulative(values);
    ASSERT_EQ(sums.size(), values.size());
    // adjacent_difference of the prefix sums recovers the series exactly:
    // each step is one addition undone by the matching subtraction.
    std::vector<double> recovered(sums.size());
    std::adjacent_difference(sums.begin(), sums.end(), recovered.begin());
    EXPECT_DOUBLE_EQ(recovered.front(), values.front()) << "seed " << seed;
    for (std::size_t i = 1; i < values.size(); ++i) {
      EXPECT_NEAR(recovered[i], values[i], 1e-12 * (1.0 + std::abs(sums[i])))
          << "seed " << seed << " index " << i;
    }
  }
}

TEST(MetricsProperty, IndividualRegretIsAllOrNothingAtTheLimit) {
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    alamr::stats::Rng rng(3000 + seed);
    const double cost = rng.uniform(0.0, 100.0);
    const double limit = rng.uniform(0.5, 50.0);
    const double memory = rng.uniform(0.0, 100.0);
    const double regret = individual_regret(cost, memory, limit);
    if (memory >= limit) {
      EXPECT_DOUBLE_EQ(regret, cost) << "seed " << seed;
    } else {
      EXPECT_DOUBLE_EQ(regret, 0.0) << "seed " << seed;
    }
    // The boundary itself counts as a violation (Eq. 11 uses >=).
    EXPECT_DOUBLE_EQ(individual_regret(cost, limit, limit), cost);
    // And regret is never negative or above the job's cost.
    EXPECT_GE(regret, 0.0);
    EXPECT_LE(regret, cost);
  }
}

TEST(MetricsProperty, RmseIsTranslationBounded) {
  // Triangle inequality on the residual vector: shifting every prediction
  // by t moves the RMSE by at most |t|, in both directions.
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    alamr::stats::Rng rng(4000 + seed);
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0.0, 30.0));
    const auto pred = random_vector(rng, n, -20.0, 20.0);
    const auto actual = random_vector(rng, n, -20.0, 20.0);
    const double t = rng.uniform(-10.0, 10.0);
    std::vector<double> shifted(pred);
    for (double& x : shifted) x += t;
    const double base = rmse(pred, actual);
    const double moved = rmse(shifted, actual);
    EXPECT_LE(moved, base + std::abs(t) + 1e-10) << "seed " << seed;
    EXPECT_GE(moved, std::abs(base - std::abs(t)) - 1e-10) << "seed " << seed;
  }
}

TEST(MetricsProperty, RmseIsPermutationInvariantAndNonNegative) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    alamr::stats::Rng rng(5000 + seed);
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform(0.0, 30.0));
    const auto pred = random_vector(rng, n, -20.0, 20.0);
    const auto actual = random_vector(rng, n, -20.0, 20.0);
    const double base = rmse(pred, actual);
    EXPECT_GE(base, 0.0);

    // Apply the same random permutation to both vectors.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (std::size_t i = n; i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(i)));
      std::swap(order[i - 1], order[std::min(j, i - 1)]);
    }
    std::vector<double> pred_p(n);
    std::vector<double> actual_p(n);
    for (std::size_t i = 0; i < n; ++i) {
      pred_p[i] = pred[order[i]];
      actual_p[i] = actual[order[i]];
    }
    EXPECT_NEAR(rmse(pred_p, actual_p), base, 1e-10 * (1.0 + base))
        << "seed " << seed;
  }
}

}  // namespace
