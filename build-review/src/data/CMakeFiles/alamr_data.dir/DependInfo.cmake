
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cpp" "src/data/CMakeFiles/alamr_data.dir/csv.cpp.o" "gcc" "src/data/CMakeFiles/alamr_data.dir/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/alamr_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/alamr_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/partition.cpp" "src/data/CMakeFiles/alamr_data.dir/partition.cpp.o" "gcc" "src/data/CMakeFiles/alamr_data.dir/partition.cpp.o.d"
  "/root/repo/src/data/transforms.cpp" "src/data/CMakeFiles/alamr_data.dir/transforms.cpp.o" "gcc" "src/data/CMakeFiles/alamr_data.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/linalg/CMakeFiles/alamr_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/alamr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
