file(REMOVE_RECURSE
  "CMakeFiles/memory_aware_planning.dir/memory_aware_planning.cpp.o"
  "CMakeFiles/memory_aware_planning.dir/memory_aware_planning.cpp.o.d"
  "memory_aware_planning"
  "memory_aware_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_aware_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
