// Tests for batch trajectory execution and cross-trajectory aggregation.

#include "alamr/core/batch.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "synthetic_dataset.hpp"

namespace {

using namespace alamr::core;

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Bitwise comparison of everything a trajectory records — the shared-
// context path must not perturb a single bit.
void expect_trajectories_identical(const TrajectoryResult& a,
                                   const TrajectoryResult& b) {
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  EXPECT_EQ(a.partition.test, b.partition.test);
  EXPECT_EQ(a.partition.init, b.partition.init);
  EXPECT_EQ(a.partition.active, b.partition.active);
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    const IterationRecord& ra = a.iterations[i];
    const IterationRecord& rb = b.iterations[i];
    EXPECT_EQ(ra.dataset_row, rb.dataset_row) << i;
    EXPECT_TRUE(same_bits(ra.predicted_cost_log10, rb.predicted_cost_log10))
        << i;
    EXPECT_TRUE(same_bits(ra.predicted_cost_sigma, rb.predicted_cost_sigma))
        << i;
    EXPECT_TRUE(same_bits(ra.predicted_mem_log10, rb.predicted_mem_log10))
        << i;
    EXPECT_TRUE(same_bits(ra.predicted_mem_sigma, rb.predicted_mem_sigma))
        << i;
    EXPECT_TRUE(same_bits(ra.rmse_cost, rb.rmse_cost)) << i;
    EXPECT_TRUE(same_bits(ra.rmse_mem, rb.rmse_mem)) << i;
    EXPECT_TRUE(same_bits(ra.cumulative_regret, rb.cumulative_regret)) << i;
  }
}

AlOptions fast_options() {
  AlOptions options;
  options.n_test = 30;
  options.n_init = 8;
  options.max_iterations = 6;
  options.initial_fit.restarts = 0;
  options.initial_fit.max_opt_iterations = 15;
  options.refit.max_opt_iterations = 3;
  return options;
}

const alamr::data::Dataset& dataset() {
  static const auto d = alamr::testing::synthetic_amr_dataset(90, 777);
  return d;
}

TEST(RunBatch, ProducesRequestedTrajectories) {
  const AlSimulator sim(dataset(), fast_options());
  BatchOptions batch;
  batch.trajectories = 4;
  batch.threads = 1;
  const auto results = run_batch(sim, RandUniform(), batch);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& traj : results) {
    EXPECT_EQ(traj.iterations.size(), 6u);
    EXPECT_EQ(traj.strategy_name, "RandUniform");
  }
}

TEST(RunBatch, TrajectoriesUseDifferentPartitions) {
  const AlSimulator sim(dataset(), fast_options());
  BatchOptions batch;
  batch.trajectories = 3;
  batch.threads = 1;
  const auto results = run_batch(sim, RandUniform(), batch);
  EXPECT_NE(results[0].partition.test, results[1].partition.test);
  EXPECT_NE(results[1].partition.test, results[2].partition.test);
}

TEST(RunBatch, DeterministicRegardlessOfThreadCount) {
  const AlSimulator sim(dataset(), fast_options());
  BatchOptions serial;
  serial.trajectories = 3;
  serial.threads = 1;
  serial.seed = 99;
  BatchOptions parallel = serial;
  parallel.threads = 3;

  const auto a = run_batch(sim, RandGoodness(), serial);
  const auto b = run_batch(sim, RandGoodness(), parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].iterations.size(), b[t].iterations.size());
    for (std::size_t i = 0; i < a[t].iterations.size(); ++i) {
      EXPECT_EQ(a[t].iterations[i].dataset_row, b[t].iterations[i].dataset_row);
    }
  }
}

TEST(RunBatch, ZeroTrajectoriesThrows) {
  const AlSimulator sim(dataset(), fast_options());
  BatchOptions batch;
  batch.trajectories = 0;
  EXPECT_THROW(run_batch(sim, RandUniform(), batch), std::invalid_argument);
}

TEST(RunBatch, SharedContextMatchesUnshared) {
  const AlSimulator sim(dataset(), fast_options());
  BatchOptions shared;
  shared.trajectories = 3;
  shared.threads = 1;
  shared.seed = 404;
  shared.shared_context = true;
  BatchOptions unshared = shared;
  unshared.shared_context = false;

  const auto a = run_batch(sim, RandGoodness(), shared);
  const auto b = run_batch(sim, RandGoodness(), unshared);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    expect_trajectories_identical(a[t], b[t]);
  }
}

TEST(RunBatch, SharedContextDeterministicAcrossThreadCounts) {
  // The context is read concurrently by every worker; results must not
  // depend on scheduling (also the tsan target for the shared structure).
  const AlSimulator sim(dataset(), fast_options());
  BatchOptions serial;
  serial.trajectories = 4;
  serial.threads = 1;
  serial.seed = 505;
  serial.shared_context = true;
  BatchOptions parallel = serial;
  parallel.threads = 4;

  const auto a = run_batch(sim, RandGoodness(), serial);
  const auto b = run_batch(sim, RandGoodness(), parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    expect_trajectories_identical(a[t], b[t]);
  }
}

TEST(RunBatch, SharedContextTrajectoriesOnlyGatherDistances) {
  namespace trace = alamr::core::trace;
  const bool was_enabled = trace::enabled();
  trace::set_enabled(true);

  const AlSimulator sim(dataset(), fast_options());
  const SharedBatchContext ctx = sim.make_shared_context();
  alamr::stats::Rng rng(808);
  const auto partition = alamr::data::make_partition(
      sim.dataset().size(), sim.options().n_test, sim.options().n_init, rng);
  const RandUniform strategy;
  const TrajectoryResult traj =
      sim.run_with_partition(strategy, partition, rng, &ctx);
  trace::set_enabled(was_enabled);

  // A batch member never recomputes a distance cache from features: the
  // train cache is gathered at fit, the cross cache gathered on (re)build
  // and append — the from-scratch counters stay at zero.
  EXPECT_EQ(traj.trace.counter("gp.dist_cache_build"), 0u);
  EXPECT_EQ(traj.trace.counter("gp.dist_base_build"), 0u);
  EXPECT_GT(traj.trace.counter("gp.dist_cache_gather"), 0u);
  EXPECT_GT(traj.trace.counter("sim.shared_context_runs"), 0u);
}

TEST(RunBatch, MismatchedSharedContextRejected) {
  const AlSimulator sim(dataset(), fast_options());
  const auto other_data = alamr::testing::synthetic_amr_dataset(70, 123);
  const AlSimulator other(other_data, fast_options());
  const SharedBatchContext wrong = other.make_shared_context();
  alamr::stats::Rng rng(9);
  EXPECT_THROW(sim.run(RandUniform(), rng, &wrong), std::invalid_argument);
}

TEST(ExtractSeries, PullsTheRightField) {
  TrajectoryResult traj;
  IterationRecord r1;
  r1.rmse_cost = 1.0;
  r1.cumulative_cost = 5.0;
  r1.actual_cost = 5.0;
  r1.cumulative_regret = 0.5;
  r1.rmse_mem = 2.0;
  IterationRecord r2 = r1;
  r2.rmse_cost = 0.5;
  r2.cumulative_cost = 7.0;
  r2.actual_cost = 2.0;
  traj.iterations = {r1, r2};

  EXPECT_EQ(extract_series(traj, Metric::kRmseCost),
            (std::vector<double>{1.0, 0.5}));
  EXPECT_EQ(extract_series(traj, Metric::kCumulativeCost),
            (std::vector<double>{5.0, 7.0}));
  EXPECT_EQ(extract_series(traj, Metric::kActualCost),
            (std::vector<double>{5.0, 2.0}));
  EXPECT_EQ(extract_series(traj, Metric::kCumulativeRegret),
            (std::vector<double>{0.5, 0.5}));
  EXPECT_EQ(extract_series(traj, Metric::kRmseMem),
            (std::vector<double>{2.0, 2.0}));
}

TEST(AggregateCurve, MeanMinMaxAcrossTrajectories) {
  TrajectoryResult a;
  TrajectoryResult b;
  for (int i = 0; i < 3; ++i) {
    IterationRecord ra;
    ra.rmse_cost = 1.0 + i;
    a.iterations.push_back(ra);
    IterationRecord rb;
    rb.rmse_cost = 3.0 - i;
    b.iterations.push_back(rb);
  }
  const std::vector<TrajectoryResult> trajectories{a, b};
  const auto curve = aggregate_curve(trajectories, Metric::kRmseCost);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].mean, 2.0);
  EXPECT_DOUBLE_EQ(curve[0].lo, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].hi, 3.0);
  EXPECT_EQ(curve[0].count, 2u);
  EXPECT_DOUBLE_EQ(curve[2].mean, 2.0);  // (3 + 1) / 2
}

TEST(AggregateCurve, EarlyStoppedTrajectoriesDropOut) {
  TrajectoryResult longer;
  TrajectoryResult shorter;
  for (int i = 0; i < 5; ++i) {
    IterationRecord r;
    r.cumulative_regret = 1.0;
    longer.iterations.push_back(r);
    if (i < 2) shorter.iterations.push_back(r);
  }
  const std::vector<TrajectoryResult> trajectories{longer, shorter};
  const auto curve = aggregate_curve(trajectories, Metric::kCumulativeRegret);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_EQ(curve[1].count, 2u);
  EXPECT_EQ(curve[2].count, 1u);
  EXPECT_EQ(curve[4].count, 1u);
}

TEST(AggregateCurve, EmptyInput) {
  const std::vector<TrajectoryResult> none;
  EXPECT_TRUE(aggregate_curve(none, Metric::kRmseCost).empty());
}

}  // namespace
