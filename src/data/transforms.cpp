#include "alamr/data/transforms.hpp"

#include <cmath>
#include <stdexcept>

namespace alamr::data {

std::vector<double> log10_transform(std::span<const double> values) {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!(values[i] > 0.0)) {
      throw std::invalid_argument("log10_transform: values must be positive");
    }
    out[i] = std::log10(values[i]);
  }
  return out;
}

std::vector<double> exp10_transform(std::span<const double> values) {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = std::pow(10.0, values[i]);
  }
  return out;
}

Matrix apply_column_transforms(const Matrix& x,
                               std::span<const ColumnTransform> spec) {
  if (spec.empty()) return x;
  if (spec.size() != x.cols()) {
    throw std::invalid_argument("apply_column_transforms: spec size mismatch");
  }
  Matrix out(x.rows(), x.cols());
  for (std::size_t j = 0; j < x.cols(); ++j) {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const double v = x(i, j);
      switch (spec[j]) {
        case ColumnTransform::kIdentity:
          out(i, j) = v;
          break;
        case ColumnTransform::kLog2:
        case ColumnTransform::kLog10:
          if (!(v > 0.0)) {
            throw std::invalid_argument(
                "apply_column_transforms: log of non-positive feature");
          }
          out(i, j) =
              spec[j] == ColumnTransform::kLog2 ? std::log2(v) : std::log10(v);
          break;
      }
    }
  }
  return out;
}

FeatureScaler FeatureScaler::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("FeatureScaler: empty matrix");
  FeatureScaler scaler;
  scaler.mins_.assign(x.cols(), std::numeric_limits<double>::infinity());
  scaler.maxs_.assign(x.cols(), -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      scaler.mins_[j] = std::min(scaler.mins_[j], x(i, j));
      scaler.maxs_[j] = std::max(scaler.maxs_[j], x(i, j));
    }
  }
  return scaler;
}

Matrix FeatureScaler::transform(const Matrix& x) const {
  if (x.cols() != dim()) {
    throw std::invalid_argument("FeatureScaler::transform: dimension mismatch");
  }
  Matrix out(x.rows(), x.cols());
  for (std::size_t j = 0; j < x.cols(); ++j) {
    const double range = maxs_[j] - mins_[j];
    for (std::size_t i = 0; i < x.rows(); ++i) {
      out(i, j) = range > 0.0 ? (x(i, j) - mins_[j]) / range : 0.5;
    }
  }
  return out;
}

Matrix FeatureScaler::inverse_transform(const Matrix& scaled) const {
  if (scaled.cols() != dim()) {
    throw std::invalid_argument("FeatureScaler::inverse_transform: dimension mismatch");
  }
  Matrix out(scaled.rows(), scaled.cols());
  for (std::size_t j = 0; j < scaled.cols(); ++j) {
    const double range = maxs_[j] - mins_[j];
    for (std::size_t i = 0; i < scaled.rows(); ++i) {
      out(i, j) = range > 0.0 ? mins_[j] + scaled(i, j) * range : mins_[j];
    }
  }
  return out;
}

}  // namespace alamr::data
