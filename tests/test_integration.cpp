// End-to-end integration: AMR campaign -> dataset -> CSV round trip ->
// Algorithm-1 AL with every strategy -> paper-shaped qualitative checks.
// Uses a deliberately small campaign so the whole file runs in seconds.

#include <gtest/gtest.h>

#include <cmath>

#include "alamr/amr/campaign.hpp"
#include "alamr/core/batch.hpp"
#include "alamr/core/simulator.hpp"
#include "alamr/data/csv.hpp"

namespace {

using namespace alamr;

const data::Dataset& campaign_dataset() {
  static const data::Dataset dataset = [] {
    amr::CampaignOptions options;
    options.p_values = {4, 16};
    options.mx_values = {8};
    options.level_values = {1, 2, 3};
    options.r0_values = {0.25, 0.4};
    options.rhoin_values = {0.05, 0.3};
    options.unique_configs = 20;
    options.dataset_size = 26;
    options.base_problem.final_time = 0.008;
    options.maxrss_bug_threshold_seconds = 3.0;
    options.maxrss_bug_probability = 0.25;
    options.seed = 2718;
    const auto records = amr::Campaign(options).run();
    return amr::Campaign::to_dataset(records, options.dataset_size);
  }();
  return dataset;
}

core::AlOptions fast_al_options() {
  core::AlOptions options;
  options.n_test = 8;
  options.n_init = 4;
  options.max_iterations = 10;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 20;
  options.refit.max_opt_iterations = 4;
  return options;
}

TEST(Integration, CampaignProducesAnalyzableDataset) {
  const data::Dataset& dataset = campaign_dataset();
  EXPECT_EQ(dataset.size(), 26u);
  EXPECT_EQ(dataset.dim(), 5u);
  // Responses positive (log10 transform must be applicable).
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_GT(dataset.cost[i], 0.0);
    EXPECT_GT(dataset.memory[i], 0.0);
    EXPECT_GT(dataset.wallclock[i], 0.0);
  }
  // Cost spans a meaningful range even in this tiny campaign.
  const auto [min_it, max_it] =
      std::minmax_element(dataset.cost.begin(), dataset.cost.end());
  EXPECT_GT(*max_it / *min_it, 3.0);
}

TEST(Integration, CsvRoundTripPreservesDataset) {
  const data::Dataset& dataset = campaign_dataset();
  const data::Dataset parsed = data::from_csv_string(data::to_csv_string(dataset));
  ASSERT_EQ(parsed.size(), dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed.cost[i], dataset.cost[i]);
    EXPECT_DOUBLE_EQ(parsed.memory[i], dataset.memory[i]);
  }
}

TEST(Integration, EveryStrategyRunsOnCampaignData) {
  const core::AlSimulator sim(campaign_dataset(), fast_al_options());
  const std::vector<std::unique_ptr<core::Strategy>> strategies = [] {
    std::vector<std::unique_ptr<core::Strategy>> s;
    s.push_back(std::make_unique<core::RandUniform>());
    s.push_back(std::make_unique<core::MaxSigma>());
    s.push_back(std::make_unique<core::MinPred>());
    s.push_back(std::make_unique<core::RandGoodness>());
    return s;
  }();
  for (const auto& strategy : strategies) {
    stats::Rng rng(5);
    const auto traj = sim.run(*strategy, rng);
    EXPECT_EQ(traj.iterations.size(), 10u) << strategy->name();
    EXPECT_TRUE(std::isfinite(traj.iterations.back().rmse_cost))
        << strategy->name();
  }
}

TEST(Integration, RgmaAvoidsPredictedHighMemoryJobs) {
  core::AlOptions options = fast_al_options();
  options.max_iterations = 0;  // run to exhaustion / early stop
  const core::AlSimulator sim(campaign_dataset(), options);
  stats::Rng rng(6);
  const core::Rgma rgma(sim.memory_limit_log10());
  const auto traj = sim.run(rgma, rng);
  // RGMA must never pick a candidate it predicted to violate the limit.
  for (const auto& rec : traj.iterations) {
    EXPECT_LT(rec.predicted_mem_log10, sim.memory_limit_log10());
  }
}

TEST(Integration, BatchAggregationOverCampaignData) {
  const core::AlSimulator sim(campaign_dataset(), fast_al_options());
  core::BatchOptions batch;
  batch.trajectories = 2;
  batch.threads = 1;
  const auto results = core::run_batch(sim, core::RandGoodness(), batch);
  const auto curve =
      core::aggregate_curve(results, core::Metric::kCumulativeCost);
  ASSERT_EQ(curve.size(), 10u);
  // Cumulative cost curves are nondecreasing in the mean as well.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].mean + 1e-12, curve[i - 1].mean);
  }
}

TEST(Integration, CheapStrategiesSpendLessThanUniform) {
  // The paper's core cost-awareness claim, on real (simulated-AMR) data:
  // MinPred and RandGoodness select far cheaper samples than RandUniform.
  core::AlOptions options = fast_al_options();
  options.max_iterations = 12;
  const core::AlSimulator sim(campaign_dataset(), options);
  stats::Rng setup(7);
  const auto partition = data::make_partition(campaign_dataset().size(),
                                              options.n_test, options.n_init,
                                              setup);
  stats::Rng r1(1);
  stats::Rng r2(1);
  stats::Rng r3(1);
  const auto uniform =
      sim.run_with_partition(core::RandUniform(), partition, r1);
  const auto greedy = sim.run_with_partition(core::MinPred(), partition, r2);
  const auto goodness =
      sim.run_with_partition(core::RandGoodness(), partition, r3);

  const double cc_uniform = uniform.iterations.back().cumulative_cost;
  const double cc_greedy = greedy.iterations.back().cumulative_cost;
  const double cc_goodness = goodness.iterations.back().cumulative_cost;
  EXPECT_LT(cc_greedy, cc_uniform);
  EXPECT_LT(cc_goodness, cc_uniform);
}

}  // namespace
