file(REMOVE_RECURSE
  "CMakeFiles/tests_amr.dir/test_amr_campaign.cpp.o"
  "CMakeFiles/tests_amr.dir/test_amr_campaign.cpp.o.d"
  "CMakeFiles/tests_amr.dir/test_amr_euler.cpp.o"
  "CMakeFiles/tests_amr.dir/test_amr_euler.cpp.o.d"
  "CMakeFiles/tests_amr.dir/test_amr_geometry.cpp.o"
  "CMakeFiles/tests_amr.dir/test_amr_geometry.cpp.o.d"
  "CMakeFiles/tests_amr.dir/test_amr_machine.cpp.o"
  "CMakeFiles/tests_amr.dir/test_amr_machine.cpp.o.d"
  "CMakeFiles/tests_amr.dir/test_amr_mesh.cpp.o"
  "CMakeFiles/tests_amr.dir/test_amr_mesh.cpp.o.d"
  "CMakeFiles/tests_amr.dir/test_amr_solver.cpp.o"
  "CMakeFiles/tests_amr.dir/test_amr_solver.cpp.o.d"
  "tests_amr"
  "tests_amr.pdb"
  "tests_amr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
