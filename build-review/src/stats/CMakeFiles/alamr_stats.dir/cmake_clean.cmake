file(REMOVE_RECURSE
  "CMakeFiles/alamr_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/alamr_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/alamr_stats.dir/descriptive.cpp.o"
  "CMakeFiles/alamr_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/alamr_stats.dir/distributions.cpp.o"
  "CMakeFiles/alamr_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/alamr_stats.dir/kde.cpp.o"
  "CMakeFiles/alamr_stats.dir/kde.cpp.o.d"
  "CMakeFiles/alamr_stats.dir/rng.cpp.o"
  "CMakeFiles/alamr_stats.dir/rng.cpp.o.d"
  "libalamr_stats.a"
  "libalamr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alamr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
