// Tests for the online AL driver (real oracle calls per selection).

#include "alamr/core/online.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace {

using namespace alamr::core;
using alamr::linalg::Matrix;
using alamr::stats::Rng;

/// Synthetic 2-D oracle: cost grows exponentially along x0, memory along
/// x1. Deterministic, positive.
std::pair<double, double> synthetic_oracle(std::span<const double> f) {
  const double cost = 0.01 * std::pow(10.0, 2.0 * f[0]);
  const double memory = 0.5 * std::pow(10.0, 1.5 * f[1]);
  return {cost, memory};
}

Matrix unit_grid(std::size_t per_axis) {
  Matrix grid(per_axis * per_axis, 2);
  for (std::size_t i = 0; i < per_axis; ++i) {
    for (std::size_t j = 0; j < per_axis; ++j) {
      grid(i * per_axis + j, 0) =
          static_cast<double>(i) / static_cast<double>(per_axis - 1);
      grid(i * per_axis + j, 1) =
          static_cast<double>(j) / static_cast<double>(per_axis - 1);
    }
  }
  return grid;
}

OnlineAlOptions fast_options(std::size_t n_init = 3, std::size_t iters = 10) {
  OnlineAlOptions options;
  options.n_init = n_init;
  options.iterations = iters;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 20;
  options.refit.max_opt_iterations = 4;
  return options;
}

TEST(OnlineAl, RunsAndAccountsCorrectly) {
  std::size_t calls = 0;
  const ExperimentOracle oracle = [&](std::span<const double> f) {
    ++calls;
    return synthetic_oracle(f);
  };
  OnlineAlDriver driver(unit_grid(8), oracle, fast_options(3, 10));
  Rng rng(1);
  const OnlineResult result = driver.run(RandGoodness(), rng);

  EXPECT_EQ(result.records.size(), 13u);
  EXPECT_EQ(calls, 13u);
  EXPECT_EQ(driver.remaining_candidates(), 64u - 13u);

  std::set<std::size_t> rows;
  double cc = 0.0;
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const OnlineRecord& rec = result.records[i];
    EXPECT_TRUE(rows.insert(rec.grid_row).second) << "row run twice";
    EXPECT_EQ(rec.initial_phase, i < 3);
    cc += rec.cost;
    EXPECT_NEAR(rec.cumulative_cost, cc, 1e-12);
  }
  ASSERT_TRUE(result.cost_model);
  EXPECT_TRUE(result.cost_model->fitted());
}

TEST(OnlineAl, CostAwareStrategySpendsLessThanUniform) {
  const auto total_cost = [&](const Strategy& strategy) {
    OnlineAlDriver driver(unit_grid(10), synthetic_oracle, fast_options(3, 20));
    Rng rng(5);
    const OnlineResult result = driver.run(strategy, rng);
    double al_cost = 0.0;
    for (const auto& rec : result.records) {
      if (!rec.initial_phase) al_cost += rec.cost;
    }
    return al_cost;
  };
  // Averaged effect is strong; single trajectories suffice at this spread
  // (the oracle's cost spans 100x along x0).
  EXPECT_LT(total_cost(MinPred()), total_cost(MaxSigma()));
}

TEST(OnlineAl, RgmaRespectsMemoryLimitAndTracksRegret) {
  OnlineAlOptions options = fast_options(5, 25);
  options.memory_limit_log10 = std::log10(2.0);  // half the grid violates
  OnlineAlDriver driver(unit_grid(10), synthetic_oracle, options);
  const Rgma rgma(options.memory_limit_log10);
  Rng rng(9);
  const OnlineResult result = driver.run(rgma, rng);
  // After the model has seen a few samples it should stop choosing
  // violating configurations; regret must be bounded by the initial phase
  // plus early mistakes, not grow linearly.
  const double final_regret = result.records.back().cumulative_regret;
  double al_regret = 0.0;
  std::size_t al_violations = 0;
  for (const auto& rec : result.records) {
    if (!rec.initial_phase && rec.memory >= 2.0) {
      al_regret += rec.cost;
      ++al_violations;
    }
  }
  EXPECT_LE(al_violations, 5u);  // learning, not random (half would be ~12)
  EXPECT_LE(al_regret, final_regret);
}

TEST(OnlineAl, ValidatesArguments) {
  EXPECT_THROW(OnlineAlDriver(Matrix(0, 2), synthetic_oracle, fast_options()),
               std::invalid_argument);
  EXPECT_THROW(OnlineAlDriver(unit_grid(3), nullptr, fast_options()),
               std::invalid_argument);
  OnlineAlOptions bad = fast_options(0, 5);
  EXPECT_THROW(OnlineAlDriver(unit_grid(3), synthetic_oracle, bad),
               std::invalid_argument);
  OnlineAlOptions too_many = fast_options(5, 100);
  EXPECT_THROW(OnlineAlDriver(unit_grid(3), synthetic_oracle, too_many),
               std::invalid_argument);
}

TEST(OnlineAl, RunTwiceThrows) {
  OnlineAlDriver driver(unit_grid(5), synthetic_oracle, fast_options(2, 3));
  Rng rng(2);
  driver.run(RandUniform(), rng);
  EXPECT_THROW(driver.run(RandUniform(), rng), OnlineContractError);
}

TEST(OnlineAl, BadOracleMeasurementThrows) {
  const ExperimentOracle broken = [](std::span<const double>) {
    return std::pair{0.0, 1.0};
  };
  OnlineAlDriver driver(unit_grid(5), broken, fast_options(1, 2));
  Rng rng(3);
  EXPECT_THROW(driver.run(RandUniform(), rng), std::runtime_error);
}

}  // namespace
