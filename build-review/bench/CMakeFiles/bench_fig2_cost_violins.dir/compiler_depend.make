# Empty compiler generated dependencies file for bench_fig2_cost_violins.
# This may be replaced when dependencies are built.
