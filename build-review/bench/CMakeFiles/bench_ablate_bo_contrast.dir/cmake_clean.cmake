file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_bo_contrast.dir/bench_ablate_bo_contrast.cpp.o"
  "CMakeFiles/bench_ablate_bo_contrast.dir/bench_ablate_bo_contrast.cpp.o.d"
  "bench_ablate_bo_contrast"
  "bench_ablate_bo_contrast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_bo_contrast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
