// Golden-trajectory regression test: a fixed-seed 50-iteration RGMA run,
// serialized with trajectory_to_csv, compared byte-for-byte against a
// checked-in reference. This locks in the repo's determinism contract —
// the trajectory must be bit-identical whatever the thread count and
// whether the incremental-refit fast path or the full O(n^3) rebuild
// produced each posterior.
//
// To regenerate after an INTENTIONAL numerics change:
//   ALAMR_REGEN_GOLDEN=1 ./build/tests/tests_golden
// and commit the updated tests/golden/rgma_seed2024.csv with an
// explanation of why the trajectory moved.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "alamr/core/export.hpp"
#include "alamr/core/parallel.hpp"
#include "alamr/core/simulator.hpp"
#include "alamr/core/strategies.hpp"
#include "alamr/linalg/simd.hpp"
#include "synthetic_dataset.hpp"

namespace {

using namespace alamr;
using namespace alamr::core;

constexpr std::size_t kIterations = 50;

const std::filesystem::path kGoldenPath =
    std::filesystem::path(ALAMR_GOLDEN_DIR) / "rgma_seed2024.csv";

/// The one configuration the golden file pins down. Everything is seeded;
/// nothing reads the environment.
AlOptions golden_options() {
  AlOptions options;
  options.n_test = 60;
  options.n_init = 25;
  options.max_iterations = kIterations;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 40;
  options.refit.restarts = 0;
  options.refit.max_opt_iterations = 4;
  return options;
}

std::string golden_csv(std::size_t threads, bool incremental_refit,
                       bool incremental_cross = true,
                       bool use_distance_cache = true,
                       bool batched_predict = true,
                       bool panel_predict = true) {
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(320, 2024);
  AlOptions options = golden_options();
  options.incremental_refit = incremental_refit;
  options.incremental_cross = incremental_cross;
  options.initial_fit.use_distance_cache = use_distance_cache;
  options.refit.use_distance_cache = use_distance_cache;
  options.batched_predict = batched_predict;
  options.panel_predict = panel_predict;
  const AlSimulator simulator(dataset, options);
  const Rgma rgma(simulator.memory_limit_log10());

  stats::Rng partition_rng(11);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);

  set_global_parallel_threads(threads);
  stats::Rng rng(2024);
  const TrajectoryResult result =
      simulator.run_with_partition(rgma, partition, rng);
  set_global_parallel_threads(0);  // restore the configured default

  EXPECT_EQ(result.iterations.size(), kIterations)
      << "stop_reason=" << static_cast<int>(result.stop_reason);
  return trajectory_to_csv(result);
}

std::string read_golden_file() {
  std::ifstream in(kGoldenPath, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden file " << kGoldenPath;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool regenerating() {
  const char* env = std::getenv("ALAMR_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

namespace simd = alamr::linalg::simd;

// The vector dispatch levels (avx2/avx512) reroute the linalg reductions
// through FMA kernels with a different reduction tree — deliberately NOT
// bit-identical (simd.hpp numerics contract). The byte-for-byte goldens
// therefore pin the scalar level for the duration of the run — whatever
// level the process started at (so "ALAMR_SIMD_LEVEL=avx512 ctest" still
// passes them) — and the tolerance comparisons below run at the ambient
// level to carry the vector kernels' regression load.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level) : saved_(simd::active_level()) {
    EXPECT_TRUE(simd::set_level(level));
  }
  ~ScopedSimdLevel() { simd::set_level(saved_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  simd::Level saved_;
};

#define ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN() \
  const ScopedSimdLevel pin_scalar_level(simd::Level::kScalar)

TEST(GoldenTrajectory, SingleThreadIncrementalMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  const std::string csv = golden_csv(1, true);
  if (regenerating()) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << kGoldenPath;
    out << csv;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }
  EXPECT_EQ(csv, read_golden_file());
}

TEST(GoldenTrajectory, FourThreadsMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(4, true), read_golden_file());
}

TEST(GoldenTrajectory, FullRefitMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(1, false), read_golden_file());
}

TEST(GoldenTrajectory, FourThreadsFullRefitMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(4, false), read_golden_file());
}

// The incremental cross-covariance path (AlOptions::incremental_cross)
// erases/appends K(X_train, X_active) columns in place instead of
// rebuilding the matrix each iteration. Both settings must reproduce the
// same bytes — with and without the incremental-refit fast path, and
// under a parallel predict phase.

TEST(GoldenTrajectory, RebuiltCrossCovarianceMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(1, true, /*incremental_cross=*/false),
            read_golden_file());
}

TEST(GoldenTrajectory, RebuiltCrossCovarianceFullRefitMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(1, false, /*incremental_cross=*/false),
            read_golden_file());
}

TEST(GoldenTrajectory, FourThreadsRebuiltCrossCovarianceMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(4, true, /*incremental_cross=*/false),
            read_golden_file());
}

// GprOptions::use_distance_cache = false bypasses the PairwiseDistances
// cache entirely: every optimizer probe and posterior rebuild takes the
// direct-gram path. The cached transforms are constructed to replay the
// direct path's FP sequence, so the bytes must not move.

TEST(GoldenTrajectory, NoDistanceCacheMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(1, true, /*incremental_cross=*/true,
                       /*use_distance_cache=*/false),
            read_golden_file());
}

TEST(GoldenTrajectory, NoCachesAtAllMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(1, false, /*incremental_cross=*/false,
                       /*use_distance_cache=*/false),
            read_golden_file());
}

// AlOptions::batched_predict = false disables the fused batched posterior
// and the workspace arena, taking the historical per-candidate predict
// path instead. The fused path is constructed to replay the scalar path's
// FP sequence exactly (DESIGN.md §10), so the bytes must not move.

TEST(GoldenTrajectory, ScalarPredictPathMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(1, true, /*incremental_cross=*/true,
                       /*use_distance_cache=*/true,
                       /*batched_predict=*/false),
            read_golden_file());
}

TEST(GoldenTrajectory, FourThreadsScalarPredictPathMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(4, true, /*incremental_cross=*/true,
                       /*use_distance_cache=*/true,
                       /*batched_predict=*/false),
            read_golden_file());
}

// AlOptions::panel_predict = false disables the cross-iteration candidate
// panel (DESIGN.md §13), re-solving the full Z = L^{-1} K* block every
// sweep. The panel's incremental rows replay exactly the FP sequence the
// from-scratch solve performs on them, so the bytes must not move. (The
// default-on arm is every other golden test above.)

TEST(GoldenTrajectory, PanelOffPredictPathMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(1, true, /*incremental_cross=*/true,
                       /*use_distance_cache=*/true,
                       /*batched_predict=*/true,
                       /*panel_predict=*/false),
            read_golden_file());
}

TEST(GoldenTrajectory, FourThreadsPanelOffPredictPathMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(4, true, /*incremental_cross=*/true,
                       /*use_distance_cache=*/true,
                       /*batched_predict=*/true,
                       /*panel_predict=*/false),
            read_golden_file());
}

TEST(GoldenTrajectory, PanelOffFullRefitMatchesGolden) {
  ALAMR_PIN_SCALAR_FOR_BYTE_GOLDEN();
  if (regenerating()) GTEST_SKIP();
  EXPECT_EQ(golden_csv(1, false, /*incremental_cross=*/true,
                       /*use_distance_cache=*/true,
                       /*batched_predict=*/true,
                       /*panel_predict=*/false),
            read_golden_file());
}

// --- Tolerance comparison (carries the goldens at the vector levels) ---
//
// The vector kernels reassociate reductions and fuse multiply-adds, so
// the trajectory's floating-point columns may drift while every discrete
// decision (which row was acquired, in which order) must still match.
// Each kernel is within rel 1e-12 of the scalar reference
// (test_linalg_simd.cpp), but a trajectory compounds that through ~50
// refit/factor/solve chains: the worst observed whole-trajectory cell
// drift on this golden is 1.7e-7 relative (a small-magnitude RMSE cell
// at iteration 50). kVectorTrajectoryTol = 1e-6 gives ~6x headroom over
// that measurement while still failing loudly on any real numerical
// regression (which shows up orders of magnitude above rounding drift).
// Non-numeric cells — headers, row indices, censor kinds — must be
// identical. At the scalar level the tolerance is 1e-12 and every cell
// compares bit-equal anyway, which validates the comparator itself.

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool parse_double(const std::string& token, double& value) {
  if (token.empty()) return false;
  char* end = nullptr;
  value = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

void expect_csv_near(const std::string& got, const std::string& expect,
                     double rel_tol) {
  const auto got_lines = split(got, '\n');
  const auto expect_lines = split(expect, '\n');
  ASSERT_EQ(got_lines.size(), expect_lines.size()) << "row count moved";
  for (std::size_t line = 0; line < got_lines.size(); ++line) {
    const auto got_cells = split(got_lines[line], ',');
    const auto expect_cells = split(expect_lines[line], ',');
    ASSERT_EQ(got_cells.size(), expect_cells.size()) << "line " << line;
    for (std::size_t col = 0; col < got_cells.size(); ++col) {
      double g = 0.0;
      double e = 0.0;
      if (parse_double(got_cells[col], g) &&
          parse_double(expect_cells[col], e)) {
        if (g == e) continue;  // covers exact integers and -0.0 == 0.0
        const double scale = std::max(std::abs(e), std::abs(g));
        EXPECT_LE(std::abs(g - e), rel_tol * scale)
            << "line " << line << " col " << col << ": " << got_cells[col]
            << " vs " << expect_cells[col];
      } else {
        EXPECT_EQ(got_cells[col], expect_cells[col])
            << "line " << line << " col " << col;
      }
    }
  }
}

constexpr double kVectorTrajectoryTol = 1e-6;

double trajectory_tolerance_for(simd::Level level) {
  return level == simd::Level::kScalar ? 1e-12 : kVectorTrajectoryTol;
}

TEST(GoldenTrajectoryTolerance, SingleThreadIncrementalWithinTolerance) {
  if (regenerating()) GTEST_SKIP();
  expect_csv_near(golden_csv(1, true), read_golden_file(),
                  trajectory_tolerance_for(simd::active_level()));
}

TEST(GoldenTrajectoryTolerance, FourThreadsFullRefitWithinTolerance) {
  if (regenerating()) GTEST_SKIP();
  expect_csv_near(golden_csv(4, false), read_golden_file(),
                  trajectory_tolerance_for(simd::active_level()));
}

// Every dispatch level this host supports reproduces the golden within
// its tolerance gate, in one process — the in-binary counterpart of the
// per-level ALAMR_SIMD_LEVEL legs in scripts/check.sh.
TEST(GoldenTrajectoryTolerance, EveryDispatchLevelWithinTolerance) {
  if (regenerating()) GTEST_SKIP();
  const std::string golden = read_golden_file();
  const simd::Level best = simd::max_supported_level();
  for (int l = 0; l <= static_cast<int>(best); ++l) {
    const simd::Level level = static_cast<simd::Level>(l);
    const ScopedSimdLevel pin(level);
    SCOPED_TRACE(std::string("level=") + simd::to_string(level));
    expect_csv_near(golden_csv(1, true), golden,
                    trajectory_tolerance_for(level));
  }
}

}  // namespace
