// Tests for the evaluation metrics (Eqs. 10-12).

#include "alamr/core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace alamr::core;

TEST(Rmse, KnownValue) {
  const std::vector<double> pred{1.0, 2.0, 3.0};
  const std::vector<double> actual{1.0, 4.0, 3.0};
  EXPECT_NEAR(rmse(pred, actual), std::sqrt(4.0 / 3.0), 1e-12);
}

TEST(Rmse, ZeroForPerfectPredictions) {
  const std::vector<double> v{0.5, 1.5, 2.5};
  EXPECT_DOUBLE_EQ(rmse(v, v), 0.0);
}

TEST(Rmse, RejectsBadInput) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(rmse(a, b), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW(rmse(empty, empty), std::invalid_argument);
}

TEST(WeightedRmse, UniformWeightsReproducePlainRmse) {
  const std::vector<double> pred{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> actual{2.0, 2.0, 5.0, 3.0};
  const std::vector<double> uniform{1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(weighted_rmse(pred, actual, uniform), rmse(pred, actual), 1e-12);
  // Scaling all weights equally changes nothing (normalization).
  const std::vector<double> scaled{7.0, 7.0, 7.0, 7.0};
  EXPECT_NEAR(weighted_rmse(pred, actual, scaled), rmse(pred, actual), 1e-12);
}

TEST(WeightedRmse, UpweightedResidualDominates) {
  const std::vector<double> pred{0.0, 0.0};
  const std::vector<double> actual{1.0, 10.0};
  const std::vector<double> favor_small{1.0, 0.0};
  const std::vector<double> favor_large{0.0, 1.0};
  // Weighting only the small residual gives a small error; weighting only
  // the large residual gives a large one (the paper's Sec. V-D argument
  // for prioritizing expensive-region accuracy).
  EXPECT_LT(weighted_rmse(pred, actual, favor_small),
            weighted_rmse(pred, actual, favor_large));
}

TEST(WeightedRmse, RejectsInvalidWeights) {
  const std::vector<double> v{1.0, 2.0};
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(weighted_rmse(v, v, negative), std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(weighted_rmse(v, v, zeros), std::invalid_argument);
  const std::vector<double> short_w{1.0};
  EXPECT_THROW(weighted_rmse(v, v, short_w), std::invalid_argument);
}

TEST(IndividualRegret, DefinitionOfEq11) {
  // Regret equals the full job cost iff memory >= limit.
  EXPECT_DOUBLE_EQ(individual_regret(3.5, 10.0, 7.5), 3.5);
  EXPECT_DOUBLE_EQ(individual_regret(3.5, 7.5, 7.5), 3.5);  // boundary: >=
  EXPECT_DOUBLE_EQ(individual_regret(3.5, 5.0, 7.5), 0.0);
}

TEST(Cumulative, RunningSums) {
  const std::vector<double> v{1.0, 0.0, 2.0, 3.0};
  const auto c = cumulative(v);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
  EXPECT_DOUBLE_EQ(c[3], 6.0);
}

TEST(Cumulative, EmptyInput) {
  EXPECT_TRUE(cumulative(std::vector<double>{}).empty());
}

TEST(Cumulative, MonotoneForNonNegativeSeries) {
  const std::vector<double> v{0.5, 0.0, 1.5, 0.25};
  const auto c = cumulative(v);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_GE(c[i], c[i - 1]);
}

}  // namespace
