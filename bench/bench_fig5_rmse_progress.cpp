// E6 — paper Sec. V-C RMSE progression: test RMSE of the cost and memory
// models versus iteration for RGMA at nInit in {1, 50, 100}, including
// the paper's observation that the nInit=100 configuration can LOSE
// memory-model accuracy late in AL (memory-model bias near the
// constraint) while nInit=1 stays competitive.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alamr;
  const std::optional<std::string> trace_path = bench::trace_flag(argc, argv);
  const std::optional<core::faults::FaultPlan> fault_plan =
      bench::fault_plan_flag(argc, argv);
  const bench::CheckpointFlags checkpoint = bench::checkpoint_flags(argc, argv);
  core::resilience::Options resilience;
  bench::resilience_flag(argc, argv, resilience);
  bench::print_header(
      "E6: RGMA test-RMSE progression across nInit", "Sec. V-C / Fig. 5",
      "small-nInit RGMA competitive in final RMSE; watch for late-stage "
      "memory-RMSE growth at large nInit");

  const data::Dataset dataset = bench::load_dataset();
  const std::size_t n_traj = bench::trajectories(3);
  const std::size_t iterations = 200;

  struct Row {
    std::string label;
    std::vector<core::CurvePoint> rmse_cost;
    std::vector<core::CurvePoint> rmse_mem;
    double initial_rmse_cost = 0.0;
    double initial_rmse_mem = 0.0;
  };
  std::vector<Row> rows;

  for (const std::size_t n_init : {std::size_t{1}, std::size_t{50},
                                   std::size_t{100}}) {
    core::AlOptions options = bench::al_options(n_init, iterations);
    if (fault_plan) options.failures.plan = *fault_plan;
    options.resilience = resilience;
    const core::AlSimulator simulator(dataset, options);
    const core::Rgma rgma(simulator.memory_limit_log10());
    const core::BatchOptions batch = bench::batch_options(n_traj, 777 + n_init);
    const auto results =
        bench::run_bench_batch(simulator, rgma, batch, checkpoint,
                               "rgma_ninit_" + std::to_string(n_init));
    Row row;
    row.label = "nInit=" + std::to_string(n_init);
    row.rmse_cost = core::aggregate_curve(results, core::Metric::kRmseCost);
    row.rmse_mem = core::aggregate_curve(results, core::Metric::kRmseMem);
    for (const auto& traj : results) {
      row.initial_rmse_cost += traj.initial_rmse_cost;
      row.initial_rmse_mem += traj.initial_rmse_mem;
    }
    if (!results.empty()) {
      row.initial_rmse_cost /= static_cast<double>(results.size());
      row.initial_rmse_mem /= static_cast<double>(results.size());
    }
    rows.push_back(std::move(row));
  }

  std::printf("\n%6s", "iter");
  for (const Row& row : rows) {
    std::printf(" | %10s %10s", (row.label + " cost").c_str(),
                (row.label + " mem").c_str());
  }
  std::printf("\n");
  std::printf("%6s", "init");
  for (const Row& row : rows) {
    std::printf(" | %10.4f %10.4f", row.initial_rmse_cost, row.initial_rmse_mem);
  }
  std::printf("\n");

  std::size_t longest = 0;
  for (const Row& row : rows) longest = std::max(longest, row.rmse_cost.size());
  for (std::size_t i = 0; i < longest; ++i) {
    if ((i + 1) % 10 != 0 && i + 1 != longest && i != 0) continue;
    std::printf("%6zu", i + 1);
    for (const Row& row : rows) {
      if (i < row.rmse_cost.size()) {
        std::printf(" | %10.4f %10.4f", row.rmse_cost[i].mean,
                    row.rmse_mem[i].mean);
      } else {
        std::printf(" | %10s %10s", "-", "-");
      }
    }
    std::printf("\n");
  }

  std::printf("\nLate-stage memory-model drift (paper's nInit=100 anomaly "
              "check):\n");
  for (const Row& row : rows) {
    if (row.rmse_mem.size() < 4) continue;
    const std::size_t half = row.rmse_mem.size() / 2;
    double best_late = 1e300;
    for (std::size_t i = half; i < row.rmse_mem.size(); ++i) {
      best_late = std::min(best_late, row.rmse_mem[i].mean);
    }
    const double final = row.rmse_mem.back().mean;
    std::printf("  %-10s memory RMSE: best-after-midpoint %.4f, final %.4f "
                "(drift %+.1f%%)\n",
                row.label.c_str(), best_late, final,
                100.0 * (final - best_late) / best_late);
  }
  bench::finish_trace(trace_path);
  return 0;
}
