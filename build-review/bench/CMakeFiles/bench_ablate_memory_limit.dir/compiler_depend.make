# Empty compiler generated dependencies file for bench_ablate_memory_limit.
# This may be replaced when dependencies are built.
