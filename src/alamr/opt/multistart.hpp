#pragma once

// Multi-restart driver around L-BFGS.
//
// The LML surface (paper Eq. 8) is multi-modal in the hyperparameters; GP
// libraries mitigate this with `n_restarts_optimizer`. We reproduce that:
// the first start is user-provided (warm start from the previous AL
// iteration per Algorithm 1's note), further starts are sampled uniformly
// inside the bounds.

#include "alamr/opt/lbfgs.hpp"
#include "alamr/stats/rng.hpp"

namespace alamr::opt {

struct MultistartOptions {
  std::size_t restarts = 0;  // additional random starts beyond x0
  LbfgsOptions lbfgs;
};

/// Minimizes `f` from `x0` and from `restarts` random points inside
/// `bounds` (which must be fully specified when restarts > 0); returns the
/// best result found. Restarts run on the global thread pool, so `f` must
/// tolerate concurrent calls; all starts are drawn from `rng` up-front and
/// ties keep the earliest start, making the result independent of the
/// thread count.
OptimizeResult multistart_minimize(const Objective& f,
                                   std::span<const double> x0,
                                   const Bounds& bounds,
                                   const MultistartOptions& options,
                                   stats::Rng& rng);

}  // namespace alamr::opt
