#pragma once

// Internal: per-level kernel tables, one per translation unit
// (simd_scalar.cpp / simd_avx2.cpp / simd_avx512.cpp). Only the dispatch
// machinery in simd_dispatch.cpp includes this; everything else goes
// through simd::table().

#include "alamr/linalg/simd.hpp"

namespace alamr::linalg::simd::detail {

/// nullptr when the build's compiler could not target the level (the TU
/// then compiles empty and the level is reported unsupported).
const KernelTable* avx2_table() noexcept;
const KernelTable* avx512_table() noexcept;

}  // namespace alamr::linalg::simd::detail
